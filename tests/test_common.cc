// Unit tests for src/common: RNG determinism, saturating counters,
// statistics helpers, the config parser, the hot-path containers
// (Ring, AddrIndex) and the HERMES_SIM_SCALE budget parsing.

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/addr_index.hh"
#include "common/config.hh"
#include "common/ring.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/simulator.hh"

namespace hermes
{
namespace
{

/** RAII helper: set an environment variable for one test. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv() { unsetenv(name_); }

  private:
    const char *name_;
};

TEST(SimBudgetFromEnv, UnsetKeepsDefaults)
{
    ScopedEnv env("HERMES_SIM_SCALE", nullptr);
    const SimBudget b = SimBudget::fromEnv(100, 400);
    EXPECT_EQ(b.warmupInstrs, 100u);
    EXPECT_EQ(b.simInstrs, 400u);
}

TEST(SimBudgetFromEnv, ValidScaleApplies)
{
    ScopedEnv env("HERMES_SIM_SCALE", "2.5");
    const SimBudget b = SimBudget::fromEnv(100, 400);
    EXPECT_EQ(b.warmupInstrs, 250u);
    EXPECT_EQ(b.simInstrs, 1000u);
}

TEST(SimBudgetFromEnv, FractionalScaleShrinks)
{
    ScopedEnv env("HERMES_SIM_SCALE", "0.25");
    const SimBudget b = SimBudget::fromEnv(1000, 4000);
    EXPECT_EQ(b.warmupInstrs, 250u);
    EXPECT_EQ(b.simInstrs, 1000u);
}

TEST(SimBudgetFromEnv, RejectsTrailingGarbage)
{
    ScopedEnv env("HERMES_SIM_SCALE", "2x");
    const SimBudget b = SimBudget::fromEnv(100, 400);
    EXPECT_EQ(b.warmupInstrs, 100u);
    EXPECT_EQ(b.simInstrs, 400u);
}

TEST(SimBudgetFromEnv, RejectsNonNumericNanInfAndNonPositive)
{
    for (const char *bad :
         {"abc", "", "nan", "inf", "-inf", "-1", "0", "1e999"}) {
        ScopedEnv env("HERMES_SIM_SCALE", bad);
        const SimBudget b = SimBudget::fromEnv(100, 400);
        EXPECT_EQ(b.warmupInstrs, 100u) << bad;
        EXPECT_EQ(b.simInstrs, 400u) << bad;
    }
}

TEST(Ring, FifoSemanticsWithGrowth)
{
    Ring<int> r(2);
    for (int i = 0; i < 100; ++i)
        r.push_back(i);
    EXPECT_EQ(r.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(r.front(), i);
        r.pop_front();
    }
    EXPECT_TRUE(r.empty());
}

TEST(Ring, PushFrontForRetry)
{
    Ring<int> r;
    r.push_back(1);
    r.push_back(2);
    const int head = r.front();
    r.pop_front();
    r.push_front(head); // head-of-line retry pattern
    EXPECT_EQ(r.front(), 1);
    r.pop_front();
    EXPECT_EQ(r.front(), 2);
}

TEST(AddrIndex, InsertFindErase)
{
    AddrIndex idx(16);
    EXPECT_EQ(idx.find(0x42), AddrIndex::kNotFound);
    idx.insert(0x42, 3);
    idx.insert(0x43, 7);
    EXPECT_EQ(idx.find(0x42), 3u);
    EXPECT_EQ(idx.find(0x43), 7u);
    idx.erase(0x42);
    EXPECT_EQ(idx.find(0x42), AddrIndex::kNotFound);
    EXPECT_EQ(idx.find(0x43), 7u);
}

TEST(AddrIndex, SurvivesChurnAgainstReferenceMap)
{
    AddrIndex idx(64);
    Rng rng(99);
    std::vector<Addr> live;
    for (int op = 0; op < 20000; ++op) {
        if (live.size() < 64 && (live.empty() || rng.chance(0.5))) {
            const Addr line = rng.next() & 0xFFFF;
            if (idx.find(line) == AddrIndex::kNotFound) {
                idx.insert(line, static_cast<std::uint32_t>(op));
                live.push_back(line);
            }
        } else {
            const std::size_t i = rng.below(live.size());
            idx.erase(live[i]);
            live.erase(live.begin() + i);
        }
        for (const Addr l : live)
            EXPECT_NE(idx.find(l), AddrIndex::kNotFound);
    }
}

TEST(Types, AddressDecomposition)
{
    const Addr a = 0x12345678;
    EXPECT_EQ(lineAddr(a), a >> 6);
    EXPECT_EQ(pageNumber(a), a >> 12);
    EXPECT_EQ(byteOffsetInLine(a), a & 63u);
    EXPECT_EQ(lineOffsetInPage(a), (a >> 6) & 63u);
    EXPECT_EQ(wordOffsetInLine(a), (a >> 2) & 15u);
}

TEST(Types, GeometryConstants)
{
    EXPECT_EQ(kBlockSize, 64u);
    EXPECT_EQ(kPageSize, 4096u);
    EXPECT_EQ(kBlocksPerPage, 64u);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsCentred)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SignedSatCounter, SaturatesAtFiveBitBounds)
{
    SignedSatCounter c(5);
    for (int i = 0; i < 100; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 15);
    EXPECT_TRUE(c.saturatedHigh());
    for (int i = 0; i < 100; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), -16);
    EXPECT_TRUE(c.saturatedLow());
}

TEST(SignedSatCounter, InitialClamped)
{
    SignedSatCounter c(3, 100);
    EXPECT_EQ(c.value(), 3);
    SignedSatCounter d(3, -100);
    EXPECT_EQ(d.value(), -4);
}

TEST(SatCounter, TwoBitHysteresis)
{
    SatCounter c(2);
    EXPECT_FALSE(c.taken());
    c.increment();
    EXPECT_FALSE(c.taken()); // value 1, max 3
    c.increment();
    EXPECT_TRUE(c.taken());
    c.increment();
    c.increment();
    EXPECT_EQ(c.value(), 3u);
    c.decrement();
    c.decrement();
    EXPECT_FALSE(c.taken());
}

TEST(Stats, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, Percentile)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, BoxStatsBasic)
{
    const BoxStats b = boxStats({1, 2, 3, 4, 100});
    EXPECT_DOUBLE_EQ(b.min, 1);
    EXPECT_DOUBLE_EQ(b.max, 100);
    EXPECT_DOUBLE_EQ(b.median, 3);
    EXPECT_DOUBLE_EQ(b.mean, 22);
    EXPECT_LE(b.whiskerHigh, 100);
}

TEST(Stats, SummaryAccumulates)
{
    Summary s;
    s.add(3);
    s.add(1);
    s.add(2);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Stats, HistogramBinsAndOverflow)
{
    Histogram h(0, 10, 5);
    h.add(-1);
    h.add(0);
    h.add(9.99);
    h.add(10);
    h.add(5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Config, ParsesKeyValueLines)
{
    Config c;
    EXPECT_TRUE(c.parse("a = 1\n# comment\n\nb=hello\nc = 2.5\nd=true\n"));
    EXPECT_EQ(c.get("a", std::int64_t{0}), 1);
    EXPECT_EQ(c.get("b", std::string("x")), "hello");
    EXPECT_DOUBLE_EQ(c.get("c", 0.0), 2.5);
    EXPECT_TRUE(c.get("d", false));
    EXPECT_FALSE(c.contains("nope"));
}

TEST(Config, MalformedLinesReported)
{
    Config c;
    EXPECT_FALSE(c.parse("novalue\n"));
    EXPECT_FALSE(c.parse("= 3\n"));
}

TEST(Config, ArgsParsing)
{
    const char *argv[] = {"prog", "--traces=3", "name=x", "ignored"};
    Config c;
    c.parseArgs(4, argv);
    EXPECT_EQ(c.get("traces", std::int64_t{0}), 3);
    EXPECT_EQ(c.get("name", std::string()), "x");
}

TEST(Config, LaterKeysOverride)
{
    Config c;
    c.parse("k = 1\nk = 2\n");
    EXPECT_EQ(c.get("k", std::int64_t{0}), 2);
    EXPECT_EQ(c.keys().size(), 1u);
}

TEST(Config, GetIntRejectsGarbageAndOverflow)
{
    Config c;
    c.set("trailing", "12x");
    c.set("empty", "");
    c.set("huge", "99999999999999999999999");
    c.set("neg_huge", "-99999999999999999999999");
    c.set("float", "1.5");
    c.set("hex", "0x40");
    c.set("neg", "-7");
    EXPECT_FALSE(c.getInt("trailing"));
    EXPECT_FALSE(c.getInt("empty"));
    EXPECT_FALSE(c.getInt("huge"));
    EXPECT_FALSE(c.getInt("neg_huge"));
    EXPECT_FALSE(c.getInt("float"));
    EXPECT_EQ(c.getInt("hex"), 0x40);
    EXPECT_EQ(c.getInt("neg"), -7);
}

TEST(Config, GetDoubleRejectsGarbageNanAndInf)
{
    Config c;
    c.set("trailing", "2.5x");
    c.set("nan", "nan");
    c.set("inf", "inf");
    c.set("neg_inf", "-inf");
    c.set("overflow", "1e999");
    c.set("ok", "2.5e2");
    c.set("underflow", "1e-999"); // flushes to ~0: finite, accepted
    EXPECT_FALSE(c.getDouble("trailing"));
    EXPECT_FALSE(c.getDouble("nan"));
    EXPECT_FALSE(c.getDouble("inf"));
    EXPECT_FALSE(c.getDouble("neg_inf"));
    EXPECT_FALSE(c.getDouble("overflow"));
    EXPECT_DOUBLE_EQ(c.getDouble("ok").value(), 250.0);
    EXPECT_TRUE(c.getDouble("underflow").has_value());
}

TEST(Config, GetBoolRejectsNonBoolWords)
{
    Config c;
    c.set("two", "2");
    c.set("word", "maybe");
    c.set("empty", "");
    c.set("yes", "YES");
    c.set("off", "off");
    EXPECT_FALSE(c.getBool("two"));
    EXPECT_FALSE(c.getBool("word"));
    EXPECT_FALSE(c.getBool("empty"));
    EXPECT_EQ(c.getBool("yes"), true);
    EXPECT_EQ(c.getBool("off"), false);
}

TEST(ParseUint64, FullRangeAndRejection)
{
    EXPECT_EQ(parseUint64("0"), 0u);
    EXPECT_EQ(parseUint64("18446744073709551615"), UINT64_MAX);
    EXPECT_FALSE(parseUint64("18446744073709551616")); // overflow
    EXPECT_FALSE(parseUint64("-1")); // strtoull would silently wrap
    EXPECT_FALSE(parseUint64("12x"));
    EXPECT_FALSE(parseUint64(""));
}

TEST(ParseSizeBytes, SuffixesAndRejection)
{
    EXPECT_EQ(parseSizeBytes("64"), 64u);
    EXPECT_EQ(parseSizeBytes("3K"), 3072u);
    EXPECT_EQ(parseSizeBytes("3k"), 3072u);
    EXPECT_EQ(parseSizeBytes("6M"), 6ull << 20);
    EXPECT_EQ(parseSizeBytes("2G"), 2ull << 30);
    EXPECT_FALSE(parseSizeBytes(""));
    EXPECT_FALSE(parseSizeBytes("M"));
    EXPECT_FALSE(parseSizeBytes("-3M"));
    EXPECT_FALSE(parseSizeBytes("3.5M"));
    EXPECT_FALSE(parseSizeBytes("3MB"));
    EXPECT_FALSE(parseSizeBytes("99999999999999999999G"));
}

} // namespace
} // namespace hermes
