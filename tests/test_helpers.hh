#pragma once

/**
 * @file
 * Shared fakes for unit-testing memory-system components in isolation:
 * a scriptable backing memory (fixed-latency MemDevice) and a recording
 * client that captures returned responses.
 */

#include <deque>
#include <vector>

#include "cache/mem_iface.hh"

namespace hermes::test
{

/** Records every response it receives. */
class RecordingClient : public MemClient
{
  public:
    void returnData(const MemRequest &req) override
    {
        responses.push_back(req);
    }

    bool
    sawLine(Addr line) const
    {
        for (const auto &r : responses)
            if (r.line() == line)
                return true;
        return false;
    }

    std::vector<MemRequest> responses;
};

/**
 * Fixed-latency backing store standing in for everything below the
 * component under test. Responds to reads after @c latency cycles via
 * the wired client; counts writes.
 */
class FakeMemory : public MemDevice
{
  public:
    explicit FakeMemory(Cycle latency = 50) : latency_(latency) {}

    void setClient(MemClient *client) { client_ = client; }

    bool
    addRead(const MemRequest &req) override
    {
        if (rejectReads)
            return false;
        reads.push_back(req);
        pending_.push_back({req, now_ + latency_});
        return true;
    }

    bool
    addWrite(const MemRequest &req) override
    {
        writes.push_back(req);
        return true;
    }

    void
    tick(Cycle now) override
    {
        now_ = now;
        while (!pending_.empty() && pending_.front().second <= now) {
            MemRequest resp = pending_.front().first;
            pending_.pop_front();
            resp.servedFrom = MemLevel::Dram;
            resp.cycleMcArrive = now;
            if (client_ != nullptr)
                client_->returnData(resp);
        }
    }

    bool rejectReads = false;
    std::vector<MemRequest> reads;
    std::vector<MemRequest> writes;

  private:
    Cycle latency_;
    Cycle now_ = 0;
    MemClient *client_ = nullptr;
    std::deque<std::pair<MemRequest, Cycle>> pending_;
};

/** Make a load request to a byte address. */
inline MemRequest
loadReq(Addr address, Addr pc = 0x400000, int core = 0,
        std::uint64_t instr = 1)
{
    MemRequest r;
    r.address = address;
    r.pc = pc;
    r.coreId = core;
    r.type = AccessType::Load;
    r.instrId = instr;
    return r;
}

} // namespace hermes::test
