// Tests for the schema'd parameter registry (sim/param_registry.hh):
// fromConfig/toConfig round trips, validation (unknown keys with
// nearest-key suggestion, range and power-of-two rejection, enum
// membership), string-driven sweep axes, and the golden guarantee that
// a string-built scenario produces byte-identical RunStats
// fingerprints to the equivalent struct-built configuration.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/config.hh"
#include "golden_util.hh"
#include "sim/param_registry.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sweep/axis.hh"
#include "trace/suite.hh"

namespace hermes
{
namespace
{

using golden::goldenBudget;
using golden::loadGoldens;

/** Every registered key with its value, as one comparable string. */
std::string
flatten(const SystemConfig &cfg)
{
    std::string out;
    const Config c = cfg.toConfig();
    for (const std::string &key : c.keys())
        out += key + "=" + *c.getString(key) + "\n";
    return out;
}

TEST(ParamRegistry, EveryParamHasDocRangeAndReparseableDefault)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    for (const ParamDef &d : ParamRegistry::instance().params()) {
        EXPECT_FALSE(d.doc.empty()) << d.key;
        if (d.type == ParamType::Int || d.type == ParamType::Size) {
            EXPECT_LT(d.minValue, d.maxValue) << d.key;
        }
        if (d.type == ParamType::Enum) {
            EXPECT_FALSE(d.choices.empty()) << d.key;
        }
        // The emitted value format must feed back through validation.
        EXPECT_NO_THROW(ParamRegistry::instance().apply(
            cfg, d.key, d.defaultValue()))
            << d.key;
    }
}

TEST(ParamRegistry, FromConfigEmptyIsBaseline)
{
    EXPECT_EQ(flatten(SystemConfig::fromConfig(Config{})),
              flatten(SystemConfig::baseline(1)));
}

TEST(ParamRegistry, ToConfigRoundTrips)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = PrefetcherKind::Pythia;
    cfg.predictor = PredictorKind::Popet;
    cfg.hermesIssueEnabled = true;
    cfg.llcLatency = 50;
    cfg.popet.activationThreshold = -22;
    cfg.llcBytesPerCore = 6ull << 20;
    EXPECT_EQ(flatten(SystemConfig::fromConfig(cfg.toConfig())),
              flatten(cfg));
}

TEST(ParamRegistry, CoresSeedTheBaselineDerivedDefaults)
{
    // system.cores alone must reproduce baseline(n), including the
    // DRAM channel/rank scaling baseline() derives from the core count.
    Config c;
    c.set("system.cores", "8");
    EXPECT_EQ(flatten(SystemConfig::fromConfig(c)),
              flatten(SystemConfig::baseline(8)));
}

TEST(ParamRegistry, UnknownKeySuggestsNearest)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    try {
        ParamRegistry::instance().apply(cfg, "llc.way", "8");
        FAIL() << "unknown key accepted";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("llc.ways"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ParamRegistry, RejectsOutOfRangeAndNonPowerOfTwo)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    EXPECT_THROW(applyOverride(cfg, "llc.ways=0"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "system.cores=65"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "popet.weight_bits=9"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "l1.sets=48"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "hmp.gshare_counters=1000"),
                 std::invalid_argument);
    // The rejecting path must not half-write the config.
    EXPECT_EQ(flatten(cfg), flatten(SystemConfig::baseline(1)));
}

TEST(ParamRegistry, RejectsMalformedValues)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    EXPECT_THROW(applyOverride(cfg, "llc.latency=abc"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "llc.latency=40x"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "hermes.enabled=maybe"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "predictor=foo"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "noequalssign"),
                 std::invalid_argument);
}

TEST(ParamRegistry, SeedSpansFullUint64Range)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.seed = 1ull << 63; // legal via the struct API
    EXPECT_EQ(flatten(SystemConfig::fromConfig(cfg.toConfig())),
              flatten(cfg));
    applyOverride(cfg, "system.seed=18446744073709551615");
    EXPECT_EQ(cfg.seed, UINT64_MAX);
    EXPECT_THROW(applyOverride(cfg, "system.seed=-1"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "system.seed=18446744073709551616"),
                 std::invalid_argument);
}

TEST(ParamRegistry, SizeSuffixesParse)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    applyOverride(cfg, "llc.bytes_per_core=6M");
    EXPECT_EQ(cfg.llcBytesPerCore, 6ull << 20);
    applyOverride(cfg, "llc.bytes_per_core=131072");
    EXPECT_EQ(cfg.llcBytesPerCore, 131072u);
    applyOverride(cfg, "dram.row_buffer_bytes=4K");
    EXPECT_EQ(cfg.dram.rowBufferBytes, 4096u);
}

TEST(ParamRegistry, OverridesReachNestedParams)
{
    const SystemConfig cfg = configWith(
        SystemConfig::baseline(1),
        {"popet.act_threshold=-25", "hmp.counter_bits=3",
         "ttp.tag_bits=12", "dram.channels=2", "core.rob_size=256",
         "llc.repl=lru"});
    EXPECT_EQ(cfg.popet.activationThreshold, -25);
    EXPECT_EQ(cfg.hmp.counterBits, 3u);
    EXPECT_EQ(cfg.ttp.tagBits, 12u);
    EXPECT_EQ(cfg.dram.channels, 2u);
    EXPECT_EQ(cfg.core.robSize, 256u);
    EXPECT_EQ(cfg.llcRepl, ReplKind::Lru);
}

TEST(SweepAxis, ParsesKeyAndValues)
{
    const sweep::Axis axis = sweep::parseAxis("llc.latency=30,40,50");
    EXPECT_EQ(axis.key, "llc.latency");
    EXPECT_EQ(axis.values,
              (std::vector<std::string>{"30", "40", "50"}));
}

TEST(SweepAxis, RejectsMalformedSpecs)
{
    EXPECT_THROW(sweep::parseAxis("llc.latency"),
                 std::invalid_argument);
    EXPECT_THROW(sweep::parseAxis("=30,40"), std::invalid_argument);
    EXPECT_THROW(sweep::parseAxis("llc.latency=30,,50"),
                 std::invalid_argument);
    EXPECT_THROW(sweep::parseAxis("llc.latency="),
                 std::invalid_argument);
    EXPECT_THROW(sweep::parseAxis("not.a.key=1,2"),
                 std::invalid_argument);
}

TEST(SweepAxis, ExpandAxisAppliesAndLabels)
{
    const auto pts = sweep::expandAxis(SystemConfig::baseline(1),
                                       "llc.latency=30,40");
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_EQ(pts[0].label, "llc.latency=30");
    EXPECT_EQ(pts[0].config.llcLatency, 30u);
    EXPECT_EQ(pts[1].label, "llc.latency=40");
    EXPECT_EQ(pts[1].config.llcLatency, 40u);
    // Invalid values fail before any simulation could start.
    EXPECT_THROW(sweep::expandAxis(SystemConfig::baseline(1),
                                   "l1.sets=48,64"),
                 std::invalid_argument);
}

TEST(SweepAxis, ExpandGridIsCartesianLastAxisFastest)
{
    const auto pts = sweep::expandGrid(
        SystemConfig::baseline(1),
        {"llc.latency=30,40", "core.rob_size=256,512"});
    ASSERT_EQ(pts.size(), 4u);
    EXPECT_EQ(pts[0].label, "llc.latency=30/core.rob_size=256");
    EXPECT_EQ(pts[1].label, "llc.latency=30/core.rob_size=512");
    EXPECT_EQ(pts[3].label, "llc.latency=40/core.rob_size=512");
    EXPECT_EQ(pts[3].config.llcLatency, 40u);
    EXPECT_EQ(pts[3].config.core.robSize, 512u);
}

TEST(ParamRegistry, DescribeListsEveryKey)
{
    const std::string table = ParamRegistry::instance().describe();
    for (const ParamDef &d : ParamRegistry::instance().params())
        EXPECT_NE(table.find(d.key), std::string::npos) << d.key;
    const std::string space = describeScenarioSpace();
    EXPECT_NE(space.find("popet"), std::string::npos);
    EXPECT_NE(space.find("pythia"), std::string::npos);
    EXPECT_NE(space.find(quickSuite()[0].name()), std::string::npos);
}

// --- Golden guarantees -------------------------------------------------

TEST(ParamRegistryGolden, StringBuiltBaselineMatchesGoldenFingerprint)
{
    const auto golden = loadGoldens();
    ASSERT_TRUE(golden.count("one.base.mcf"));
    const RunStats stats =
        simulateOne(SystemConfig::fromConfig(Config{}),
                    findTrace("spec06.mcf_like.0"), goldenBudget());
    EXPECT_EQ(statsFingerprint(stats), golden.at("one.base.mcf"))
        << "string-built baseline diverged from the library-API golden";
}

TEST(ParamRegistryGolden, StringOverridesMatchStructMutation)
{
    // The golden "one.hermes.mcf" config, built through the struct API
    // in test_determinism.cc, expressed here as override strings.
    const auto golden = loadGoldens();
    ASSERT_TRUE(golden.count("one.hermes.mcf"));
    const SystemConfig cfg = configWith(
        SystemConfig::baseline(1),
        {"prefetcher=pythia", "predictor=popet", "hermes.enabled=true"});
    const RunStats stats = simulateOne(
        cfg, findTrace("spec06.mcf_like.0"), goldenBudget());
    EXPECT_EQ(statsFingerprint(stats), golden.at("one.hermes.mcf"));
}

TEST(ParamRegistryGolden, SimulateDispatcherMatchesMixGolden)
{
    const auto golden = loadGoldens();
    ASSERT_TRUE(golden.count("mix2.hermes"));
    const SystemConfig cfg = configWith(
        SystemConfig::fromConfig([] {
            Config c;
            c.set("system.cores", "2");
            return c;
        }()),
        {"prefetcher=pythia", "predictor=popet", "hermes.enabled=true"});
    const RunStats stats =
        simulate(cfg,
                 {findTrace("spec06.mcf_like.0"),
                  findTrace("parsec.streamcluster_like.0")},
                 goldenBudget());
    EXPECT_EQ(statsFingerprint(stats), golden.at("mix2.hermes"));
}

} // namespace
} // namespace hermes
