// Tests for the sweep job server: spec round trips (content identity
// is shared between client and server), submit/wait/result over the
// socket, cache-backed answers without simulation, and restart
// resumption from the persisted queue journal.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sweep/journal.hh"
#include "sweep/result_cache.hh"
#include "sweep/server.hh"
#include "sweep/sweep.hh"

namespace hermes
{
namespace
{

SimBudget
tinyBudget()
{
    SimBudget b;
    b.warmupInstrs = 1'000;
    b.simInstrs = 4'000;
    return b;
}

sweep::GridPoint
singlePoint(int trace_index, Cycle llc_latency = 0)
{
    const auto traces = quickSuite();
    sweep::GridPoint p;
    p.label = traces[static_cast<std::size_t>(trace_index)].name();
    p.config = SystemConfig::baseline(1);
    if (llc_latency != 0)
        p.config.llcLatency = llc_latency;
    p.traces = {traces[static_cast<std::size_t>(trace_index)]};
    p.budget = tinyBudget();
    return p;
}

sweep::GridPoint
mixPoint()
{
    const auto traces = quickSuite();
    sweep::GridPoint p;
    p.label = "mix0." + traces[0].name() + "+" + traces[1].name();
    p.config = SystemConfig::baseline(2);
    p.traces = {traces[0], traces[1]};
    p.budget = tinyBudget();
    return p;
}

/** Short unique paths: sun_path caps unix socket names at ~107 chars. */
std::string
tempDir(const std::string &name)
{
    const std::string dir =
        ::testing::TempDir() + "hermes_srv_" + name;
    std::string cmd = "rm -rf '" + dir + "'";
    if (std::system(cmd.c_str()) != 0)
        ADD_FAILURE() << "cannot clear " << dir;
    return dir;
}

TEST(ServerSpec, RoundTripPreservesPointIdentity)
{
    for (const sweep::GridPoint &p :
         {singlePoint(0), singlePoint(1, 50), mixPoint()}) {
        const std::string spec = sweep::specFromPoint(p);
        const sweep::GridPoint back = sweep::pointFromSpec(spec);
        EXPECT_EQ(back.label, p.label);
        EXPECT_EQ(back.traces.size(), p.traces.size());
        EXPECT_EQ(sweep::pointFingerprint(back),
                  sweep::pointFingerprint(p))
            << spec;
    }
}

TEST(ServerSpec, ExplicitEmptyLabelRoundTrips)
{
    sweep::GridPoint p = singlePoint(0);
    p.label = "";
    const sweep::GridPoint back =
        sweep::pointFromSpec(sweep::specFromPoint(p));
    EXPECT_EQ(back.label, "");
    EXPECT_EQ(sweep::pointFingerprint(back),
              sweep::pointFingerprint(p));
}

TEST(ServerSpec, DefaultLabelIsTheJoinedTraceNames)
{
    const auto traces = quickSuite();
    const sweep::GridPoint p = sweep::pointFromSpec(
        "trace=" + traces[0].name() + "," + traces[1].name());
    EXPECT_EQ(p.label, traces[0].name() + "+" + traces[1].name());
    // A mix implies its core count when system.cores is not pinned.
    EXPECT_EQ(p.config.numCores, 2);
    EXPECT_EQ(p.traces.size(), 2u);
}

TEST(ServerSpec, SingleTraceReplicatesAcrossPinnedCores)
{
    const auto traces = quickSuite();
    const sweep::GridPoint p = sweep::pointFromSpec(
        "trace=" + traces[0].name() + ";system.cores=2");
    EXPECT_EQ(p.config.numCores, 2);
    ASSERT_EQ(p.traces.size(), 2u);
    EXPECT_EQ(p.traces[0].name(), p.traces[1].name());
}

TEST(ServerSpec, MalformedSpecsAreRejected)
{
    EXPECT_THROW(sweep::pointFromSpec(""), std::invalid_argument);
    EXPECT_THROW(sweep::pointFromSpec("label=x"),
                 std::invalid_argument); // no trace
    EXPECT_THROW(sweep::pointFromSpec("trace=no.such.trace"),
                 std::invalid_argument);
    EXPECT_THROW(sweep::pointFromSpec("trace"), std::invalid_argument);
    EXPECT_THROW(
        sweep::pointFromSpec("trace=" + quickSuite()[0].name() +
                             ";warmup=x"),
        std::invalid_argument);
    // Un-carriable labels are refused at render time, not mangled.
    sweep::GridPoint p = singlePoint(0);
    p.label = "a;b";
    EXPECT_THROW(sweep::specFromPoint(p), std::invalid_argument);
}

TEST(Server, SubmitWaitResultMatchesDirectSimulation)
{
    const std::string dir = tempDir("swr");
    sweep::ensureDirectory(dir);
    sweep::ResultCache cache({dir + "/cache", 0, 0});
    sweep::ServeOptions opts;
    opts.socketPath = dir + "/s.sock";
    opts.stateDir = dir + "/state";
    opts.workers = 2;
    opts.cache = &cache;
    sweep::SweepServer server(opts);
    server.start();

    EXPECT_EQ(sweep::serverRequest(opts.socketPath, "ping"),
              "ok pong");

    const sweep::GridPoint p = singlePoint(0);
    const std::string fp =
        fingerprintHex(sweep::pointFingerprint(p));
    const std::string sub = sweep::serverRequest(
        opts.socketPath, "submit " + sweep::specFromPoint(p));
    ASSERT_EQ(sub.compare(0, 3, "ok "), 0) << sub;
    // The server derives the same fingerprint from the spec.
    EXPECT_EQ(sub.substr(3, 16), fp) << sub;

    EXPECT_EQ(sweep::serverRequest(opts.socketPath, "wait " + fp),
              "ok " + fp + " done");
    const std::string res =
        sweep::serverRequest(opts.socketPath, "result " + fp);
    ASSERT_EQ(res.compare(0, 3, "ok "), 0) << res;
    const sweep::JournalRecord rec =
        sweep::decodeJournalRecord(res.substr(3));
    EXPECT_EQ(rec.result.label, p.label);

    const RunStats direct =
        simulateOne(p.config, p.traces[0], p.budget);
    EXPECT_EQ(statsFingerprint(rec.result.stats),
              statsFingerprint(direct));

    // Duplicate submission dedups onto the completed job.
    EXPECT_EQ(sweep::serverRequest(opts.socketPath,
                                   "submit " +
                                       sweep::specFromPoint(p)),
              "ok " + fp + " done");
    // Unknown requests and bad job ids answer, not disconnect.
    EXPECT_EQ(sweep::serverRequest(opts.socketPath, "poll xyz")
                  .compare(0, 6, "error "),
              0);
    EXPECT_EQ(sweep::serverRequest(opts.socketPath, "frobnicate")
                  .compare(0, 6, "error "),
              0);
    server.stop();
}

TEST(Server, CacheBackedSubmitNeedsNoWorkers)
{
    // A server with ZERO workers can still answer any point its cache
    // holds — proof submissions are resolved by content, not queued
    // blindly.
    const std::string dir = tempDir("warm");
    sweep::ensureDirectory(dir);
    sweep::ResultCache cache({dir + "/cache", 0, 0});
    const sweep::GridPoint p = singlePoint(1);
    sweep::PointResult r;
    r.index = 0;
    r.label = p.label;
    r.stats = simulateOne(p.config, p.traces[0], p.budget);
    cache.store(p, r);

    sweep::ServeOptions opts;
    opts.socketPath = dir + "/s.sock";
    opts.stateDir = dir + "/state";
    opts.workers = 0;
    opts.cache = &cache;
    sweep::SweepServer server(opts);
    server.start();
    const std::string fp =
        fingerprintHex(sweep::pointFingerprint(p));
    EXPECT_EQ(sweep::serverRequest(opts.socketPath,
                                   "submit " +
                                       sweep::specFromPoint(p)),
              "ok " + fp + " done");
    EXPECT_EQ(server.statsSnapshot().cacheHits, 1u);
    EXPECT_EQ(server.pending(), 0u);
    server.stop();
}

TEST(Server, RestartResumesAcknowledgedSubmissions)
{
    const std::string dir = tempDir("restart");
    sweep::ensureDirectory(dir);
    sweep::ResultCache cache({dir + "/cache", 0, 0});
    sweep::ServeOptions opts;
    opts.socketPath = dir + "/s.sock";
    opts.stateDir = dir + "/state";
    opts.cache = &cache;

    const sweep::GridPoint p1 = singlePoint(0);
    const sweep::GridPoint p2 = singlePoint(2);
    const std::string fp1 =
        fingerprintHex(sweep::pointFingerprint(p1));
    const std::string fp2 =
        fingerprintHex(sweep::pointFingerprint(p2));

    // Server A acknowledges two submissions but (0 workers) never
    // simulates them — then dies.
    {
        opts.workers = 0;
        sweep::SweepServer a(opts);
        a.start();
        sweep::serverRequest(opts.socketPath,
                             "submit " + sweep::specFromPoint(p1));
        sweep::serverRequest(opts.socketPath,
                             "submit " + sweep::specFromPoint(p2));
        EXPECT_EQ(a.pending(), 2u);
        a.stop();
    }

    // Server B restores both from queue.log and completes them.
    {
        opts.workers = 2;
        sweep::SweepServer b(opts);
        EXPECT_EQ(b.statsSnapshot().restored, 2u);
        EXPECT_EQ(b.pending(), 2u);
        b.start();
        EXPECT_EQ(sweep::serverRequest(opts.socketPath, "wait " + fp1),
                  "ok " + fp1 + " done");
        EXPECT_EQ(sweep::serverRequest(opts.socketPath, "wait " + fp2),
                  "ok " + fp2 + " done");
        const RunStats direct =
            simulateOne(p1.config, p1.traces[0], p1.budget);
        const std::string res = sweep::serverRequest(
            opts.socketPath, "result " + fp1);
        ASSERT_EQ(res.compare(0, 3, "ok "), 0) << res;
        EXPECT_EQ(statsFingerprint(
                      sweep::decodeJournalRecord(res.substr(3))
                          .result.stats),
                  statsFingerprint(direct));
        b.stop();
    }

    // Server C finds nothing left to restore: both specs resolve from
    // the result cache, and a poll still answers from the store even
    // though the compacted queue forgot the job.
    {
        opts.workers = 0;
        sweep::SweepServer c(opts);
        EXPECT_EQ(c.statsSnapshot().restored, 0u);
        EXPECT_EQ(c.statsSnapshot().cacheHits, 2u);
        EXPECT_EQ(c.pending(), 0u);
        c.start();
        EXPECT_EQ(sweep::serverRequest(opts.socketPath, "poll " + fp1),
                  "ok " + fp1 + " done");
        c.stop();
    }
}

TEST(Server, TornQueueTailIsToleratedEarlierCorruptionIsNot)
{
    const std::string dir = tempDir("torn");
    sweep::ensureDirectory(dir);
    sweep::ResultCache cache({dir + "/cache", 0, 0});
    sweep::ServeOptions opts;
    opts.socketPath = dir + "/s.sock";
    opts.stateDir = dir + "/state";
    opts.workers = 0;
    opts.cache = &cache;

    const sweep::GridPoint p = singlePoint(0);
    {
        sweep::SweepServer a(opts);
        a.start();
        sweep::serverRequest(opts.socketPath,
                             "submit " + sweep::specFromPoint(p));
        a.stop();
    }
    const std::string queue = opts.stateDir + "/queue.log";

    // A torn final line (kill mid-append, before the ack) is dropped.
    {
        std::ofstream out(queue, std::ios::app | std::ios::binary);
        out << "0123456789abcdef label=half-writ";
    }
    {
        sweep::SweepServer b(opts);
        EXPECT_EQ(b.statsSnapshot().restored, 1u);
    }

    // A corrupt line with acknowledged lines after it is a hard error:
    // silently dropping it would lose a submission a client saw acked.
    std::ifstream in(queue, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    in.close();
    {
        std::ofstream out(queue, std::ios::binary);
        out << "not a valid line\n" << buf.str();
    }
    EXPECT_THROW(sweep::SweepServer c(opts), std::runtime_error);
}

TEST(Server, ShutdownRequestReleasesWaitForShutdown)
{
    const std::string dir = tempDir("bye");
    sweep::ensureDirectory(dir);
    sweep::ResultCache cache({dir + "/cache", 0, 0});
    sweep::ServeOptions opts;
    opts.socketPath = dir + "/s.sock";
    opts.stateDir = dir + "/state";
    opts.workers = 0;
    opts.cache = &cache;
    sweep::SweepServer server(opts);
    server.start();

    std::thread waiter([&] { server.waitForShutdown(); });
    EXPECT_EQ(sweep::serverRequest(opts.socketPath, "shutdown"),
              "ok bye");
    waiter.join();
    server.stop();

    // The socket file is gone; a second server can reuse the address.
    sweep::SweepServer again(opts);
    again.start();
    EXPECT_EQ(sweep::serverRequest(opts.socketPath, "ping"),
              "ok pong");
    again.stop();
}

TEST(Server, RequiresACache)
{
    sweep::ServeOptions opts;
    opts.socketPath = "/tmp/x.sock";
    opts.stateDir = "/tmp/x.state";
    opts.cache = nullptr;
    EXPECT_THROW(sweep::SweepServer s(opts), std::runtime_error);
}

} // namespace
} // namespace hermes
