// Tests for the comparison off-chip predictors: HMP (hybrid
// local/gshare/gskew), TTP (tag tracking) and the Ideal oracle, plus
// the PredictorStats accuracy/coverage arithmetic (paper Eq. 3-4).

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "common/rng.hh"
#include "predictor/hmp.hh"
#include "predictor/ideal.hh"
#include "predictor/offchip_pred.hh"
#include "predictor/ttp.hh"

namespace hermes
{
namespace
{

TEST(PredictorStats, AccuracyAndCoverageFormulas)
{
    PredictorStats s;
    s.truePositives = 60;
    s.falsePositives = 40;
    s.falseNegatives = 20;
    s.trueNegatives = 880;
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.6); // TP/(TP+FP)
    EXPECT_DOUBLE_EQ(s.coverage(), 0.75); // TP/(TP+FN)
    EXPECT_EQ(s.total(), 1000u);
}

TEST(PredictorStats, EmptyIsZero)
{
    PredictorStats s;
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(s.coverage(), 0.0);
}

TEST(Hmp, DefaultsPredictOnChip)
{
    Hmp hmp;
    PredMeta meta;
    EXPECT_FALSE(hmp.predict(0x400000, 0x1000, meta));
    EXPECT_TRUE(meta.valid);
}

TEST(Hmp, LearnsAlwaysMissPc)
{
    Hmp hmp;
    const Addr pc = 0x400700;
    for (int i = 0; i < 200; ++i) {
        PredMeta meta;
        hmp.predict(pc, 0x1000 + i * 64, meta);
        hmp.train(pc, 0x1000 + i * 64, meta, true);
    }
    PredMeta meta;
    EXPECT_TRUE(hmp.predict(pc, 0x99999, meta));
}

TEST(Hmp, LearnsAlternatingPatternViaHistory)
{
    Hmp hmp;
    const Addr pc = 0x400800;
    // Strict alternation hit/miss: history-based components should
    // track it far better than chance after warmup.
    for (int i = 0; i < 4000; ++i) {
        PredMeta meta;
        hmp.predict(pc, 0x1000, meta);
        hmp.train(pc, 0x1000, meta, i % 2 == 0);
    }
    int correct = 0;
    for (int i = 4000; i < 4400; ++i) {
        PredMeta meta;
        const bool pred = hmp.predict(pc, 0x1000, meta);
        const bool actual = i % 2 == 0;
        correct += pred == actual;
        hmp.train(pc, 0x1000, meta, actual);
    }
    EXPECT_GT(correct, 320); // >80%
}

TEST(Hmp, StorageNearPaperBudget)
{
    Hmp hmp;
    const double kb = hmp.storageBits() / 8.0 / 1024.0;
    EXPECT_NEAR(kb, 11.0, 3.0); // paper: 11KB
}

TEST(Ttp, PredictsOffChipWhenUntracked)
{
    Ttp ttp;
    PredMeta meta;
    EXPECT_TRUE(ttp.predict(0x400000, 0x5000, meta));
}

TEST(Ttp, FillThenEvictionRoundTrip)
{
    Ttp ttp;
    const Addr line = lineAddr(0x123456780);
    ttp.onFillFromDram(line);
    EXPECT_TRUE(ttp.tracked(line));
    PredMeta meta;
    EXPECT_FALSE(ttp.predict(0x400000, 0x123456780, meta));
    ttp.onLlcEviction(line);
    EXPECT_FALSE(ttp.tracked(line));
    EXPECT_TRUE(ttp.predict(0x400000, 0x123456780, meta));
}

TEST(Ttp, DuplicateFillIdempotent)
{
    Ttp ttp;
    const Addr line = 0x77777;
    ttp.onFillFromDram(line);
    ttp.onFillFromDram(line);
    ttp.onLlcEviction(line);
    EXPECT_FALSE(ttp.tracked(line));
}

TEST(Ttp, EvictionOfUntrackedLineIsNoop)
{
    Ttp ttp;
    ttp.onLlcEviction(0x1234); // must not crash or corrupt
    ttp.onFillFromDram(0x1235);
    EXPECT_TRUE(ttp.tracked(0x1235));
}

TEST(Ttp, SetOverflowEvictsLru)
{
    TtpParams p;
    p.sets = 1;
    p.ways = 4;
    Ttp ttp(p);
    // All lines map to set 0 (sets == 1); fill 5 distinct tags.
    std::vector<Addr> lines = {0x10, 0x20, 0x30, 0x40, 0x50};
    for (Addr l : lines)
        ttp.onFillFromDram(l);
    unsigned tracked = 0;
    for (Addr l : lines)
        tracked += ttp.tracked(l);
    EXPECT_EQ(tracked, 4u); // one victimised
    EXPECT_FALSE(ttp.tracked(lines[0])); // the LRU one
}

TEST(Ttp, StorageNearPaperBudget)
{
    Ttp ttp;
    const double mb = ttp.storageBits() / 8.0 / 1024.0 / 1024.0;
    EXPECT_NEAR(mb, 1.5, 0.1); // paper: ~1536KB
}

TEST(Ideal, FollowsProbe)
{
    std::set<Addr> resident = {lineAddr(0x1000)};
    IdealPredictor ideal(
        [&resident](Addr line) { return resident.count(line) > 0; });
    PredMeta meta;
    EXPECT_FALSE(ideal.predict(0x400000, 0x1000, meta));
    EXPECT_TRUE(ideal.predict(0x400000, 0x2000, meta));
    resident.insert(lineAddr(0x2000));
    EXPECT_FALSE(ideal.predict(0x400000, 0x2000, meta));
    EXPECT_EQ(ideal.storageBits(), 0u);
}

TEST(Registry, NamesRoundTrip)
{
    for (auto kind : {PredictorKind::None, PredictorKind::Popet,
                      PredictorKind::Hmp, PredictorKind::Ttp,
                      PredictorKind::Ideal})
        EXPECT_EQ(predictorKindFromString(predictorKindName(kind)), kind);
    EXPECT_THROW(predictorKindFromString("magic"), std::invalid_argument);
}

/** Property: TTP tracked-set behaviour is conservative under random
 * fill/evict streams (never tracks more than capacity). */
class TtpRandomTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TtpRandomTest, NeverExceedsCapacity)
{
    TtpParams p;
    p.sets = 16;
    p.ways = GetParam();
    Ttp ttp(p);
    Rng rng(GetParam());
    std::vector<Addr> lines;
    for (int i = 0; i < 2000; ++i) {
        const Addr line = rng.below(1 << 20);
        if (rng.chance(0.7)) {
            ttp.onFillFromDram(line);
            lines.push_back(line);
        } else if (!lines.empty()) {
            ttp.onLlcEviction(lines[rng.below(lines.size())]);
        }
    }
    // Count tracked among a sample; bounded by structure capacity.
    unsigned tracked = 0;
    for (const Addr l : lines)
        tracked += ttp.tracked(l);
    EXPECT_LE(tracked, p.sets * p.ways * 2); // aliasing slack
}

INSTANTIATE_TEST_SUITE_P(Ways, TtpRandomTest,
                         ::testing::Values(2u, 4u, 8u, 11u));

TEST(PredictorKindStrings, RoundTripsEveryKind)
{
    for (const PredictorKind kind :
         {PredictorKind::None, PredictorKind::Popet, PredictorKind::Hmp,
          PredictorKind::Ttp, PredictorKind::Ideal}) {
        const char *name = predictorKindName(kind);
        EXPECT_STRNE(name, "?");
        EXPECT_EQ(predictorKindFromString(name), kind) << name;
    }
}

TEST(PredictorKindStrings, UnknownNameThrows)
{
    EXPECT_THROW(predictorKindFromString("perceptron"),
                 std::invalid_argument);
    EXPECT_THROW(predictorKindFromString(""), std::invalid_argument);
    // Parsing is exact: no case folding or whitespace trimming.
    EXPECT_THROW(predictorKindFromString("Popet"),
                 std::invalid_argument);
}

} // namespace
} // namespace hermes
