// Tests for binary trace capture and replay, including robustness
// against malformed files: truncated headers/records, bad magic,
// version mismatches, zero-record files and corrupt record counts
// must all fail cleanly (an exception, never UB or a partial read),
// plus a write->read round-trip property test over arbitrary record
// contents.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/rng.hh"
#include "trace/suite.hh"
#include "trace/trace_file.hh"

namespace hermes
{
namespace
{

/** Workload replaying a fixed vector (for round-trip property tests). */
class VectorWorkload : public Workload
{
  public:
    explicit VectorWorkload(std::vector<TraceInstr> instrs)
        : instrs_(std::move(instrs))
    {
    }

    const std::string &name() const override { return name_; }
    const std::string &category() const override { return name_; }

    TraceInstr
    next() override
    {
        const TraceInstr t = instrs_[pos_];
        pos_ = (pos_ + 1) % instrs_.size();
        return t;
    }

    std::unique_ptr<Workload>
    clone(std::uint64_t) const override
    {
        return std::make_unique<VectorWorkload>(instrs_);
    }

  private:
    std::string name_ = "vector";
    std::vector<TraceInstr> instrs_;
    std::size_t pos_ = 0;
};

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "hermes_trace_test.bin";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(TraceFileTest, RoundTripPreservesInstructions)
{
    const TraceSpec spec = findTrace("ligra.bfs_like.0");
    auto source = spec.make();
    ASSERT_EQ(0u, writeTraceFile(path_, *source, 5000, spec.name(),
                               spec.category()));

    FileWorkload replay(path_);
    EXPECT_EQ(replay.name(), spec.name());
    EXPECT_EQ(replay.category(), spec.category());
    EXPECT_EQ(replay.recordCount(), 5000u);

    auto reference = spec.make();
    for (int i = 0; i < 5000; ++i) {
        const TraceInstr a = reference->next();
        const TraceInstr b = replay.next();
        ASSERT_EQ(a.pc, b.pc) << i;
        ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
        ASSERT_EQ(a.vaddr, b.vaddr);
        ASSERT_EQ(a.branchTaken, b.branchTaken);
        ASSERT_EQ(a.depDistance, b.depDistance);
    }
}

TEST_F(TraceFileTest, ReplayLoopsAtEnd)
{
    const TraceSpec spec = findTrace("spec06.lbm_like.0");
    auto source = spec.make();
    ASSERT_EQ(0u, writeTraceFile(path_, *source, 100, spec.name(),
                               spec.category()));
    FileWorkload replay(path_);
    std::vector<TraceInstr> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(replay.next());
    for (int i = 0; i < 100; ++i) {
        const TraceInstr t = replay.next();
        ASSERT_EQ(t.pc, first[i].pc);
        ASSERT_EQ(t.vaddr, first[i].vaddr);
    }
}

TEST_F(TraceFileTest, CloneRotatesStartPosition)
{
    const TraceSpec spec = findTrace("spec06.lbm_like.0");
    auto source = spec.make();
    ASSERT_EQ(0u, writeTraceFile(path_, *source, 500, spec.name(),
                               spec.category()));
    FileWorkload replay(path_);
    auto copy = replay.clone(1);
    EXPECT_EQ(copy->name(), replay.name());
    // Different phase: the streams must diverge within a few records.
    bool differs = false;
    for (int i = 0; i < 16 && !differs; ++i) {
        const TraceInstr a = replay.next();
        const TraceInstr b = copy->next();
        differs = a.pc != b.pc || a.vaddr != b.vaddr ||
                  a.kind != b.kind;
    }
    EXPECT_TRUE(differs);
}

TEST_F(TraceFileTest, CloneNeverLockstepsWithBase)
{
    // Regression: the old rotation ((seed_offset * 9973) % count)
    // started every replica at 0 whenever count divided the product,
    // running multi-core copies in lockstep. Records with vaddr == i
    // make the start position directly observable.
    const std::uint64_t n = 9973;
    std::vector<TraceInstr> instrs(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        instrs[i].pc = 0x1000;
        instrs[i].kind = InstrKind::Load;
        instrs[i].vaddr = i + 1;
    }
    VectorWorkload source(instrs);
    ASSERT_EQ(0u, writeTraceFile(path_, source, n, "lockstep", "test"));
    FileWorkload replay(path_);
    for (std::uint64_t offset = 1; offset <= 8; ++offset) {
        auto copy = replay.clone(offset);
        EXPECT_NE(copy->next().vaddr, 1u) << offset;
    }
}

TEST_F(TraceFileTest, RejectsMissingFile)
{
    EXPECT_THROW(FileWorkload{"/nonexistent/path/trace.bin"},
                 std::runtime_error);
}

TEST_F(TraceFileTest, RejectsGarbageFile)
{
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a trace file at all";
    out.close();
    EXPECT_THROW(FileWorkload{path_}, std::runtime_error);
}

TEST_F(TraceFileTest, RejectsTruncatedFile)
{
    const TraceSpec spec = findTrace("spec06.lbm_like.0");
    auto source = spec.make();
    ASSERT_EQ(0u, writeTraceFile(path_, *source, 100, spec.name(),
                               spec.category()));
    // Truncate the record area.
    std::ifstream in(path_, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(data.data(),
              static_cast<std::streamsize>(data.size() / 2));
    out.close();
    EXPECT_THROW(FileWorkload{path_}, std::runtime_error);
}

namespace
{

/** Read a written trace file back as raw bytes. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

/** Write raw bytes (used to craft corrupted files). */
void
spit(const std::string &path, const std::string &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/** A small valid trace file's bytes, for corruption tests. */
std::string
validTraceBytes(const std::string &path, std::uint64_t records = 8)
{
    const TraceSpec spec = findTrace("spec06.lbm_like.0");
    auto source = spec.make();
    EXPECT_EQ(0u, writeTraceFile(path, *source, records, spec.name(),
                               spec.category()));
    return slurp(path);
}

} // namespace

TEST_F(TraceFileTest, RejectsTruncatedHeader)
{
    const std::string data = validTraceBytes(path_);
    // Every prefix that ends inside the header must throw, not read
    // uninitialised values or crash.
    for (const std::size_t len : {0u, 4u, 8u, 10u, 12u, 16u, 20u}) {
        spit(path_, data.substr(0, len));
        EXPECT_THROW(FileWorkload{path_}, std::runtime_error) << len;
    }
}

TEST_F(TraceFileTest, RejectsBadMagic)
{
    std::string data = validTraceBytes(path_);
    data[0] = 'X';
    spit(path_, data);
    EXPECT_THROW(FileWorkload{path_}, std::runtime_error);
}

TEST_F(TraceFileTest, RejectsVersionMismatch)
{
    std::string data = validTraceBytes(path_);
    const std::uint32_t bad_version = kTraceVersion + 1;
    std::memcpy(data.data() + sizeof(kTraceMagic), &bad_version,
                sizeof(bad_version));
    spit(path_, data);
    EXPECT_THROW(FileWorkload{path_}, std::runtime_error);
}

TEST_F(TraceFileTest, RejectsZeroRecordFile)
{
    const TraceSpec spec = findTrace("spec06.lbm_like.0");
    auto source = spec.make();
    ASSERT_EQ(0u, writeTraceFile(path_, *source, 0, spec.name(),
                               spec.category()));
    EXPECT_THROW(FileWorkload{path_}, std::runtime_error);
}

TEST_F(TraceFileTest, RejectsOversizedRecordCount)
{
    std::string data = validTraceBytes(path_, 8);
    // The record count sits right before the record area: 24 bytes of
    // fixed header + the two length-prefixed strings.
    const std::size_t count_off = data.size() - 8 * 24 - sizeof(std::uint64_t);
    // A count far larger than the file can hold must fail cleanly
    // (and must not try to reserve ~2^60 records).
    const std::uint64_t huge = 1ull << 60;
    std::memcpy(data.data() + count_off, &huge, sizeof(huge));
    spit(path_, data);
    EXPECT_THROW(FileWorkload{path_}, std::runtime_error);
}

TEST_F(TraceFileTest, RoundTripPropertyArbitraryRecords)
{
    // Property: any sequence of records (extreme addresses, all kinds,
    // boundary dep distances) survives a write->read round trip.
    Rng rng(2024);
    for (int iter = 0; iter < 5; ++iter) {
        const std::size_t n = 1 + rng.below(200);
        std::vector<TraceInstr> instrs;
        instrs.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            TraceInstr t;
            t.pc = rng.next();
            t.vaddr = rng.next();
            t.kind = static_cast<InstrKind>(rng.below(4));
            t.branchTaken = rng.chance(0.5);
            t.depDistance = static_cast<std::uint32_t>(
                rng.below(4) == 0 ? rng.next() : rng.below(8));
            instrs.push_back(t);
        }
        VectorWorkload source(instrs);
        ASSERT_EQ(0u, writeTraceFile(path_, source,
                                   static_cast<std::uint64_t>(n),
                                   "prop", "test"));
        FileWorkload replay(path_);
        ASSERT_EQ(replay.recordCount(), n);
        for (std::size_t i = 0; i < n; ++i) {
            const TraceInstr r = replay.next();
            ASSERT_EQ(r.pc, instrs[i].pc) << iter << ":" << i;
            ASSERT_EQ(r.vaddr, instrs[i].vaddr);
            ASSERT_EQ(static_cast<int>(r.kind),
                      static_cast<int>(instrs[i].kind));
            ASSERT_EQ(r.branchTaken, instrs[i].branchTaken);
            ASSERT_EQ(r.depDistance, instrs[i].depDistance);
        }
    }
}

} // namespace
} // namespace hermes
