// Tests for binary trace capture and replay.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/suite.hh"
#include "trace/trace_file.hh"

namespace hermes
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "hermes_trace_test.bin";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(TraceFileTest, RoundTripPreservesInstructions)
{
    const TraceSpec spec = findTrace("ligra.bfs_like.0");
    auto source = spec.make();
    ASSERT_TRUE(writeTraceFile(path_, *source, 5000, spec.name(),
                               spec.category()));

    FileWorkload replay(path_);
    EXPECT_EQ(replay.name(), spec.name());
    EXPECT_EQ(replay.category(), spec.category());
    EXPECT_EQ(replay.recordCount(), 5000u);

    auto reference = spec.make();
    for (int i = 0; i < 5000; ++i) {
        const TraceInstr a = reference->next();
        const TraceInstr b = replay.next();
        ASSERT_EQ(a.pc, b.pc) << i;
        ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
        ASSERT_EQ(a.vaddr, b.vaddr);
        ASSERT_EQ(a.branchTaken, b.branchTaken);
        ASSERT_EQ(a.depDistance, b.depDistance);
    }
}

TEST_F(TraceFileTest, ReplayLoopsAtEnd)
{
    const TraceSpec spec = findTrace("spec06.lbm_like.0");
    auto source = spec.make();
    ASSERT_TRUE(writeTraceFile(path_, *source, 100, spec.name(),
                               spec.category()));
    FileWorkload replay(path_);
    std::vector<TraceInstr> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(replay.next());
    for (int i = 0; i < 100; ++i) {
        const TraceInstr t = replay.next();
        ASSERT_EQ(t.pc, first[i].pc);
        ASSERT_EQ(t.vaddr, first[i].vaddr);
    }
}

TEST_F(TraceFileTest, CloneRotatesStartPosition)
{
    const TraceSpec spec = findTrace("spec06.lbm_like.0");
    auto source = spec.make();
    ASSERT_TRUE(writeTraceFile(path_, *source, 500, spec.name(),
                               spec.category()));
    FileWorkload replay(path_);
    auto copy = replay.clone(1);
    EXPECT_EQ(copy->name(), replay.name());
    // Different phase: the very first record should differ.
    const TraceInstr a = replay.next();
    const TraceInstr b = copy->next();
    EXPECT_TRUE(a.pc != b.pc || a.vaddr != b.vaddr ||
                a.kind != b.kind);
}

TEST_F(TraceFileTest, RejectsMissingFile)
{
    EXPECT_THROW(FileWorkload{"/nonexistent/path/trace.bin"},
                 std::runtime_error);
}

TEST_F(TraceFileTest, RejectsGarbageFile)
{
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a trace file at all";
    out.close();
    EXPECT_THROW(FileWorkload{path_}, std::runtime_error);
}

TEST_F(TraceFileTest, RejectsTruncatedFile)
{
    const TraceSpec spec = findTrace("spec06.lbm_like.0");
    auto source = spec.make();
    ASSERT_TRUE(writeTraceFile(path_, *source, 100, spec.name(),
                               spec.category()));
    // Truncate the record area.
    std::ifstream in(path_, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(data.data(),
              static_cast<std::streamsize>(data.size() / 2));
    out.close();
    EXPECT_THROW(FileWorkload{path_}, std::runtime_error);
}

} // namespace
} // namespace hermes
