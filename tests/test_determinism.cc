// Golden determinism / regression tests for the simulation hot path.
//
// Three layers of protection:
//  1. a fixed (config, seed) run must produce identical RunStats across
//     repeated invocations in one process;
//  2. SweepEngine must produce identical RunStats at any thread count;
//  3. a small set of golden fingerprints pinned in
//     tests/golden/fingerprints.txt must match exactly, so hot-path
//     refactors that silently change simulation results fail loudly.
//
// To refresh the goldens after an *intentional* behaviour change, run:
//   HERMES_UPDATE_GOLDEN=1 ./test_determinism
// which rewrites the golden file in the source tree.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "golden_util.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sweep/sweep.hh"
#include "trace/suite.hh"

namespace hermes
{
namespace
{

using golden::goldenBudget;
using golden::goldenPath;
using golden::loadGoldens;

/** A named golden scenario: key in the golden file + how to run it. */
struct GoldenCase
{
    std::string key;
    sweep::GridPoint point;
};

std::vector<GoldenCase>
goldenCases()
{
    const SimBudget b = goldenBudget();
    const TraceSpec mcf = findTrace("spec06.mcf_like.0");
    const TraceSpec stream = findTrace("parsec.streamcluster_like.0");

    SystemConfig base = SystemConfig::baseline(1);

    SystemConfig pythia = base;
    pythia.prefetcher = PrefetcherKind::Pythia;

    SystemConfig hermes_cfg = pythia;
    hermes_cfg.predictor = PredictorKind::Popet;
    hermes_cfg.hermesIssueEnabled = true;

    SystemConfig mix_cfg = SystemConfig::baseline(2);
    mix_cfg.prefetcher = PrefetcherKind::Pythia;
    mix_cfg.predictor = PredictorKind::Popet;
    mix_cfg.hermesIssueEnabled = true;

    return {
        {"one.base.mcf", {"one.base.mcf", base, {mcf}, b}},
        {"one.pythia.stream", {"one.pythia.stream", pythia, {stream}, b}},
        {"one.hermes.mcf", {"one.hermes.mcf", hermes_cfg, {mcf}, b}},
        {"mix2.hermes", {"mix2.hermes", mix_cfg, {mcf, stream}, b}},
    };
}

RunStats
runCase(const GoldenCase &c)
{
    if (c.point.traces.size() == 1 && c.point.config.numCores == 1)
        return simulateOne(c.point.config, c.point.traces[0],
                           c.point.budget);
    return simulateMix(c.point.config, c.point.traces, c.point.budget);
}

TEST(Determinism, RepeatedRunsProduceIdenticalStats)
{
    for (const GoldenCase &c : goldenCases()) {
        const RunStats a = runCase(c);
        const RunStats b = runCase(c);
        EXPECT_EQ(statsFingerprint(a), statsFingerprint(b)) << c.key;
        // Spot-check a few fields directly so a fingerprint bug cannot
        // mask a real divergence.
        EXPECT_EQ(a.simCycles, b.simCycles) << c.key;
        EXPECT_EQ(a.instrsRetired(), b.instrsRetired()) << c.key;
        EXPECT_EQ(a.llc.demandMisses(), b.llc.demandMisses()) << c.key;
        EXPECT_EQ(a.dram.totalReads(), b.dram.totalReads()) << c.key;
    }
}

TEST(Determinism, SweepThreadCountDoesNotChangeStats)
{
    std::vector<sweep::GridPoint> grid;
    for (const GoldenCase &c : goldenCases())
        grid.push_back(c.point);

    auto fingerprints = [&grid](int threads) {
        sweep::SweepOptions opts;
        opts.threads = threads;
        const auto results = sweep::SweepEngine(opts).run(grid);
        std::vector<std::uint64_t> fps;
        for (const auto &r : results)
            fps.push_back(statsFingerprint(r.stats));
        return fps;
    };

    const auto serial = fingerprints(1);
    EXPECT_EQ(serial, fingerprints(2));
    EXPECT_EQ(serial, fingerprints(8));
}

TEST(Determinism, GoldenFingerprintsMatch)
{
    std::map<std::string, std::uint64_t> actual;
    for (const GoldenCase &c : goldenCases())
        actual[c.key] = statsFingerprint(runCase(c));

    if (std::getenv("HERMES_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << "# Golden RunStats fingerprints (statsFingerprint).\n"
            << "# Regenerate: HERMES_UPDATE_GOLDEN=1 ./test_determinism\n";
        char buf[32];
        for (const auto &[key, fp] : actual) {
            std::snprintf(buf, sizeof(buf), "%016llx",
                          static_cast<unsigned long long>(fp));
            out << key << " " << buf << "\n";
        }
        GTEST_LOG_(INFO) << "golden file updated: " << goldenPath();
        return;
    }

    const auto golden = loadGoldens();
    ASSERT_FALSE(golden.empty())
        << "missing/empty " << goldenPath()
        << " - regenerate with HERMES_UPDATE_GOLDEN=1";
    for (const auto &[key, fp] : actual) {
        const auto it = golden.find(key);
        ASSERT_NE(it, golden.end()) << "no golden entry for " << key;
        EXPECT_EQ(it->second, fp)
            << key << ": simulation results changed; if intentional, "
            << "regenerate with HERMES_UPDATE_GOLDEN=1 ./test_determinism";
    }
}

} // namespace
} // namespace hermes
