// Tests for the replacement policies (LRU, SRRIP, SHiP).

#include <gtest/gtest.h>

#include <stdexcept>

#include "cache/replacement.hh"

namespace hermes
{
namespace
{

TEST(Lru, EvictsLeastRecentlyUsed)
{
    auto lru = makeReplacement(ReplKind::Lru, 1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        lru->onInsert(0, w, 0, AccessType::Load);
    // Touch ways 0, 2, 3: way 1 is the LRU.
    lru->onHit(0, 0, 0, AccessType::Load);
    lru->onHit(0, 2, 0, AccessType::Load);
    lru->onHit(0, 3, 0, AccessType::Load);
    EXPECT_EQ(lru->victim(0), 1u);
}

TEST(Lru, InsertCountsAsUse)
{
    auto lru = makeReplacement(ReplKind::Lru, 1, 2);
    lru->onInsert(0, 0, 0, AccessType::Load);
    lru->onInsert(0, 1, 0, AccessType::Load);
    EXPECT_EQ(lru->victim(0), 0u);
}

TEST(Lru, SetsAreIndependent)
{
    auto lru = makeReplacement(ReplKind::Lru, 2, 2);
    lru->onInsert(0, 0, 0, AccessType::Load);
    lru->onInsert(0, 1, 0, AccessType::Load);
    lru->onInsert(1, 1, 0, AccessType::Load);
    lru->onInsert(1, 0, 0, AccessType::Load);
    EXPECT_EQ(lru->victim(0), 0u);
    EXPECT_EQ(lru->victim(1), 1u);
}

TEST(Srrip, HitPromotesToNearImminent)
{
    auto p = makeReplacement(ReplKind::Srrip, 1, 2);
    p->onInsert(0, 0, 0, AccessType::Load);
    p->onInsert(0, 1, 0, AccessType::Load);
    p->onHit(0, 0, 0, AccessType::Load);
    // Way 1 still at insert RRPV, way 0 promoted: victim must be 1.
    EXPECT_EQ(p->victim(0), 1u);
}

TEST(Ship, PrefetchInsertedAtDistantRrpv)
{
    auto p = makeReplacement(ReplKind::Ship, 1, 2);
    p->onInsert(0, 0, 0x400, AccessType::Load);
    p->onInsert(0, 1, 0x404, AccessType::Prefetch);
    // The prefetch-inserted line is the more distant victim.
    EXPECT_EQ(p->victim(0), 1u);
}

TEST(Ship, LearnsNoReuseSignature)
{
    auto p = makeReplacement(ReplKind::Ship, 4, 2);
    const Addr bad_pc = 0x1230;
    // Repeatedly insert and evict the bad PC without reuse; its SHCT
    // counter should fall to zero, demoting later insertions.
    for (int i = 0; i < 8; ++i) {
        p->onInsert(0, 0, bad_pc, AccessType::Load);
        p->onEvict(0, 0);
    }
    p->onInsert(0, 0, bad_pc, AccessType::Load); // distant now
    p->onInsert(0, 1, 0x5678, AccessType::Load); // near
    EXPECT_EQ(p->victim(0), 0u);
}

TEST(Ship, ReuseRestoresSignature)
{
    auto p = makeReplacement(ReplKind::Ship, 4, 2);
    const Addr pc = 0x1230;
    for (int i = 0; i < 4; ++i) {
        p->onInsert(0, 0, pc, AccessType::Load);
        p->onEvict(0, 0);
    }
    // Now show reuse several times: counter climbs back.
    for (int i = 0; i < 6; ++i) {
        p->onInsert(0, 0, pc, AccessType::Load);
        p->onHit(0, 0, pc, AccessType::Load);
        p->onEvict(0, 0);
    }
    p->onInsert(0, 0, pc, AccessType::Load);
    p->onInsert(0, 1, 0x999, AccessType::Prefetch);
    EXPECT_EQ(p->victim(0), 1u);
}

TEST(Replacement, FactoryAndNames)
{
    EXPECT_STREQ(makeReplacement(ReplKind::Lru, 2, 2)->name(), "lru");
    EXPECT_STREQ(makeReplacement(ReplKind::Srrip, 2, 2)->name(), "srrip");
    EXPECT_STREQ(makeReplacement(ReplKind::Ship, 2, 2)->name(), "ship");
    EXPECT_EQ(replKindFromString("lru"), ReplKind::Lru);
    EXPECT_EQ(replKindFromString("srrip"), ReplKind::Srrip);
    EXPECT_EQ(replKindFromString("ship"), ReplKind::Ship);
    EXPECT_THROW(replKindFromString("plru"), std::invalid_argument);
}

TEST(Replacement, StorageBitsPositive)
{
    for (auto kind : {ReplKind::Lru, ReplKind::Srrip, ReplKind::Ship})
        EXPECT_GT(makeReplacement(kind, 64, 8)->storageBits(), 0u);
}

/** Property: victim() always returns a valid way for any geometry. */
class ReplacementGeometry
    : public ::testing::TestWithParam<std::tuple<ReplKind, std::uint32_t,
                                                 std::uint32_t>>
{
};

TEST_P(ReplacementGeometry, VictimAlwaysInRange)
{
    const auto [kind, sets, ways] = GetParam();
    auto p = makeReplacement(kind, sets, ways);
    for (std::uint32_t s = 0; s < sets; ++s)
        for (std::uint32_t w = 0; w < ways; ++w)
            p->onInsert(s, w, 0x400000 + w * 4,
                        w % 3 ? AccessType::Load : AccessType::Prefetch);
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (int round = 0; round < 4; ++round) {
            const std::uint32_t v = p->victim(s);
            ASSERT_LT(v, ways);
            p->onEvict(s, v);
            p->onInsert(s, v, 0x500000, AccessType::Load);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ReplacementGeometry,
    ::testing::Combine(::testing::Values(ReplKind::Lru, ReplKind::Srrip,
                                         ReplKind::Ship),
                       ::testing::Values(1u, 16u, 64u),
                       ::testing::Values(1u, 4u, 12u, 20u)));

TEST(ReplKindStrings, RoundTripsEveryKind)
{
    for (const ReplKind kind :
         {ReplKind::Lru, ReplKind::Srrip, ReplKind::Ship}) {
        const char *name = replKindName(kind);
        EXPECT_STRNE(name, "?");
        EXPECT_EQ(replKindFromString(name), kind) << name;
    }
}

TEST(ReplKindStrings, UnknownNameThrows)
{
    EXPECT_THROW(replKindFromString("fifo"), std::invalid_argument);
    EXPECT_THROW(replKindFromString(""), std::invalid_argument);
}

} // namespace
} // namespace hermes
