// Differential property test for the flat-storage cache rewrite.
//
// Drives the real Cache (contiguous tag arrays, open-addressed MSHR
// index, ring queues) and an obviously-correct reference model
// (map-based storage, no timing, no queues) with the same seeded
// random access/evict sequences, and asserts that the hit/miss
// outcome of every access, the ordered eviction stream, the ordered
// dirty-writeback stream and the final residency agree exactly.
//
// The reference model shares only the ReplacementPolicy object
// (LRU or SHiP) with the production cache — everything the hot-path
// rewrite restructured (tag search, victim-way bookkeeping, MSHR
// machinery, writeback generation) is implemented independently on
// top of std::map.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "test_helpers.hh"

namespace hermes
{
namespace
{

using test::FakeMemory;
using test::loadReq;
using test::RecordingClient;

/** The three operation classes the write/read paths distinguish. */
enum class Op
{
    Load,      ///< addRead, AccessType::Load
    Store,     ///< addWrite, AccessType::Rfo (write-allocate)
    Writeback, ///< addWrite, AccessType::Writeback (direct install)
};

/**
 * Map-based functional cache model mirroring cache.cc semantics one
 * access at a time (the driver completes each access before the next,
 * so MSHR merging/timing never reorders handling).
 */
class ReferenceCache
{
  public:
    ReferenceCache(std::uint32_t sets, std::uint32_t ways, ReplKind kind)
        : sets_(sets), ways_(ways),
          repl_(makeReplacement(kind, sets, ways))
    {
    }

    /** @return true on hit. Mirrors the cache's per-type handling. */
    bool
    access(Op op, Addr line, Addr pc)
    {
        const std::uint32_t set =
            static_cast<std::uint32_t>(line & (sets_ - 1));
        auto &ways = sets_map_[set];
        for (auto &[way, entry] : ways) {
            if (entry.line != line)
                continue;
            switch (op) {
              case Op::Load:
                repl_->onHit(set, way, pc, AccessType::Load);
                break;
              case Op::Store:
              case Op::Writeback:
                entry.dirty = true;
                repl_->onHit(set, way, pc,
                             op == Op::Store ? AccessType::Rfo
                                             : AccessType::Writeback);
                break;
            }
            return true;
        }
        // Miss: every class installs the line (loads/stores fetch it,
        // writebacks install directly), evicting a victim if full.
        install(set, line, pc,
                op == Op::Load
                    ? AccessType::Load
                    : (op == Op::Store ? AccessType::Rfo
                                       : AccessType::Writeback),
                op != Op::Load);
        return false;
    }

    bool
    resident(Addr line) const
    {
        const std::uint32_t set =
            static_cast<std::uint32_t>(line & (sets_ - 1));
        const auto it = sets_map_.find(set);
        if (it == sets_map_.end())
            return false;
        for (const auto &[way, entry] : it->second)
            if (entry.line == line)
                return true;
        return false;
    }

    std::vector<Addr> evictions;
    std::vector<Addr> writebacks;

  private:
    struct Entry
    {
        Addr line = 0;
        bool dirty = false;
    };

    void
    install(std::uint32_t set, Addr line, Addr pc, AccessType type,
            bool dirty)
    {
        auto &ways = sets_map_[set];
        std::uint32_t way = ways_;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (ways.find(w) == ways.end()) {
                way = w;
                break;
            }
        }
        if (way == ways_) {
            way = repl_->victim(set);
            const Entry victim = ways.at(way);
            repl_->onEvict(set, way);
            evictions.push_back(victim.line);
            if (victim.dirty)
                writebacks.push_back(victim.line);
            ways.erase(way);
        }
        ways[way] = Entry{line, dirty};
        repl_->onInsert(set, way, pc, type);
    }

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::unique_ptr<ReplacementPolicy> repl_;
    std::map<std::uint32_t, std::map<std::uint32_t, Entry>> sets_map_;
};

struct DiffHarness
{
    DiffHarness(std::uint32_t sets, std::uint32_t ways, ReplKind kind)
    {
        CacheParams p;
        p.sets = sets;
        p.ways = ways;
        p.latency = 1;
        p.mshrs = 4;
        p.rqSize = 8;
        p.repl = kind;
        cache = std::make_unique<Cache>(p);
        cache->setLower(&memory);
        cache->setUpper(0, &client);
        memory.setClient(cache.get());
        cache->onEviction = [this](Addr line) {
            evictions.push_back(line);
        };
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i) {
            ++now;
            memory.tick(now);
            cache->tick(now);
        }
    }

    /** Submit one op and run it to completion; @return hit. */
    bool
    access(Op op, Addr line, Addr pc, int seq)
    {
        const CacheStats before = cache->stats();
        MemRequest req = loadReq(line << kLogBlockSize, pc, 0, seq);
        switch (op) {
          case Op::Load:
            EXPECT_TRUE(cache->addRead(req));
            break;
          case Op::Store:
            req.type = AccessType::Rfo;
            cache->addWrite(req);
            break;
          case Op::Writeback:
            req.type = AccessType::Writeback;
            cache->addWrite(req);
            break;
        }
        run(80); // cover lookup + memory latency + fill
        const CacheStats &after = cache->stats();
        switch (op) {
          case Op::Load:
            return after.loadHits > before.loadHits;
          case Op::Store:
          case Op::Writeback:
            return after.writebackHits > before.writebackHits;
        }
        return false;
    }

    FakeMemory memory{20};
    std::unique_ptr<Cache> cache;
    RecordingClient client;
    std::vector<Addr> evictions;
    Cycle now = 0;
};

class CacheDiffTest
    : public ::testing::TestWithParam<std::tuple<ReplKind, std::uint64_t>>
{
};

TEST_P(CacheDiffTest, MatchesReferenceModelStreams)
{
    const auto [kind, seed] = GetParam();
    const std::uint32_t sets = 16;
    const std::uint32_t ways = 4;

    DiffHarness real(sets, ways, kind);
    ReferenceCache ref(sets, ways, kind);
    Rng rng(seed);

    for (int i = 0; i < 1200; ++i) {
        const Addr line = rng.below(sets * ways * 3);
        // 9 distinct PCs so SHiP's signature table sees reuse patterns.
        const Addr pc = 0x400000 + 4 * rng.below(9);
        const double roll = rng.uniform();
        const Op op = roll < 0.7 ? Op::Load
                                 : (roll < 0.9 ? Op::Store
                                               : Op::Writeback);

        const bool real_hit = real.access(op, line, pc, i + 1);
        const bool ref_hit = ref.access(op, line, pc);
        ASSERT_EQ(real_hit, ref_hit)
            << "op " << static_cast<int>(op) << " line " << line
            << " at access " << i;
    }

    // Ordered event streams must agree exactly.
    ASSERT_EQ(real.evictions, ref.evictions);
    std::vector<Addr> real_wb;
    for (const MemRequest &w : real.memory.writes)
        real_wb.push_back(w.line());
    ASSERT_EQ(real_wb, ref.writebacks);

    // Final residency: everything the model holds must probe resident.
    for (Addr line = 0; line < sets * ways * 3; ++line)
        ASSERT_EQ(real.cache->probe(line), ref.resident(line)) << line;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CacheDiffTest,
    ::testing::Combine(::testing::Values(ReplKind::Lru, ReplKind::Ship),
                       ::testing::Values(1u, 7u, 1234u)));

} // namespace
} // namespace hermes
