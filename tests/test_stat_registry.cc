// Tests for the statistics registry: schema completeness, the
// --stats column-selection grammar, zero-input hardening of every
// derived metric, and byte-identity of the registry-driven CSV/JSON
// rows and statsFingerprint() against the pre-registry hand-rolled
// implementations (kept here, verbatim, as executable goldens).

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "sim/power.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sim/stat_registry.hh"

namespace hermes
{
namespace
{

// --- the pre-registry implementations, pinned ------------------------

std::string
legacyNum(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

std::string
legacyNum(std::uint64_t v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

/** Verbatim pre-refactor formatCsvRow() (aggregateFields inlined). */
std::string
legacyCsvRow(const std::string &label, const RunStats &stats)
{
    std::uint64_t loads = 0, offchip = 0;
    for (const auto &c : stats.core) {
        loads += c.loadsRetired;
        offchip += c.loadsOffChip;
    }
    const PredictorStats pred = stats.predTotal();
    const PowerBreakdown power = computePower(stats);
    const double total_ipc =
        stats.simCycles
            ? static_cast<double>(stats.instrsRetired()) /
                  static_cast<double>(stats.simCycles)
            : 0.0;
    std::string out = label;
    for (const std::string &v :
         {legacyNum(stats.simCycles), legacyNum(stats.instrsRetired()),
          legacyNum(total_ipc), legacyNum(stats.llcMpki()),
          legacyNum(loads), legacyNum(offchip),
          legacyNum(pred.accuracy()), legacyNum(pred.coverage()),
          legacyNum(stats.dram.totalReads()),
          legacyNum(stats.dram.writes),
          legacyNum(stats.dram.hermesIssued),
          legacyNum(stats.dram.hermesUseful),
          legacyNum(stats.dram.hermesDropped),
          legacyNum(stats.prefetch.issued),
          legacyNum(stats.prefetch.useful), legacyNum(power.total())})
        out += "," + v;
    return out;
}

void
legacyCacheHash(Fnv64 &h, const CacheStats &c)
{
    h.add(c.loadLookups);
    h.add(c.loadHits);
    h.add(c.rfoLookups);
    h.add(c.rfoHits);
    h.add(c.writebackLookups);
    h.add(c.writebackHits);
    h.add(c.prefetchLookups);
    h.add(c.prefetchDropped);
    h.add(c.prefetchIssued);
    h.add(c.mshrMerges);
    h.add(c.mshrLatePrefetchHits);
    h.add(c.fills);
    h.add(c.prefetchFills);
    h.add(c.evictions);
    h.add(c.dirtyEvictions);
    h.add(c.usefulPrefetches);
    h.add(c.uselessPrefetches);
    h.add(c.rqRejects);
}

/** Verbatim pre-refactor statsFingerprint(). */
std::uint64_t
legacyFingerprint(const RunStats &stats)
{
    Fnv64 h;
    h.add(stats.simCycles);
    h.add(stats.core.size());
    for (const CoreStats &c : stats.core) {
        h.add(c.cycles);
        h.add(c.instrsRetired);
        h.add(c.loadsRetired);
        h.add(c.storesRetired);
        h.add(c.branchesRetired);
        h.add(c.branchMispredicts);
        h.add(c.loadsOffChip);
        h.add(c.offChipBlocking);
        h.add(c.offChipNonBlocking);
        h.add(c.loadsServedByHermes);
        h.add(c.stallCyclesOffChip);
        h.add(c.stallCyclesOtherLoad);
        h.add(c.stallCyclesOther);
        h.add(c.stallCyclesEliminable);
    }
    for (const BranchStats &b : stats.branch) {
        h.add(b.lookups);
        h.add(b.mispredicts);
    }
    for (const PredictorStats &p : stats.predictor) {
        h.add(p.truePositives);
        h.add(p.falsePositives);
        h.add(p.falseNegatives);
        h.add(p.trueNegatives);
    }
    for (const std::uint64_t c : stats.coreFinishCycle)
        h.add(c);
    legacyCacheHash(h, stats.l1);
    legacyCacheHash(h, stats.l2);
    legacyCacheHash(h, stats.llc);
    const DramStats &d = stats.dram;
    h.add(d.demandReads);
    h.add(d.prefetchReads);
    h.add(d.hermesReads);
    h.add(d.writes);
    h.add(d.rowHits);
    h.add(d.rowMisses);
    h.add(d.rowConflicts);
    h.add(d.readMerges);
    h.add(d.wqForwards);
    h.add(d.hermesIssued);
    h.add(d.hermesMergedIntoExisting);
    h.add(d.hermesDropped);
    h.add(d.hermesUseful);
    h.add(d.hermesRejected);
    h.add(stats.prefetch.issued);
    h.add(stats.prefetch.useful);
    h.add(stats.prefetch.useless);
    h.add(stats.hermesRequestsScheduled);
    h.add(stats.hermesLoadsServed);
    return h.value();
}

// --- fixtures --------------------------------------------------------

SimBudget
tinyBudget()
{
    SimBudget b;
    b.warmupInstrs = 4'000;
    b.simInstrs = 12'000;
    return b;
}

/** Every raw counter set to a distinct value via registry setters. */
RunStats
syntheticStats(std::size_t cores)
{
    RunStats s;
    std::uint64_t v = 1;
    for (const StatCodecItem &item :
         StatRegistry::instance().codecPlan()) {
        switch (item.kind) {
        case StatCodecItem::Kind::Scalar:
            item.defs[0]->setU64(s, v++);
            break;
        case StatCodecItem::Kind::Group:
            item.resize(s, cores);
            for (std::size_t i = 0; i < cores; ++i)
                for (const StatDef *d : item.defs)
                    d->setAtU64(s, i, v++);
            break;
        case StatCodecItem::Kind::Section:
            for (const StatDef *d : item.defs)
                d->setU64(s, v++);
            break;
        }
    }
    return s;
}

TEST(StatRegistry, EnumeratesTheWholeSchema)
{
    const auto &reg = StatRegistry::instance();
    EXPECT_GE(reg.stats().size(), 30u);

    std::set<std::string> keys;
    for (const StatDef &d : reg.stats()) {
        EXPECT_TRUE(keys.insert(d.key).second) << d.key;
        EXPECT_FALSE(d.doc.empty()) << d.key;
        // Every statistic must be readable one way or another.
        EXPECT_TRUE(d.getU64 || d.getF64) << d.key;
        EXPECT_EQ(reg.find(d.key), &d);
        // The --list-stats table names every key.
        EXPECT_NE(reg.describe().find(d.key), std::string::npos)
            << d.key;
    }
}

TEST(StatRegistry, FingerprintMatchesLegacyOnSimulatedRuns)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = PrefetcherKind::Pythia;
    cfg.predictor = PredictorKind::Popet;
    cfg.hermesIssueEnabled = true;
    const RunStats one =
        simulateOne(cfg, findTrace("spec06.mcf_like.0"), tinyBudget());
    EXPECT_EQ(statsFingerprint(one), legacyFingerprint(one));

    SystemConfig multi = SystemConfig::baseline(2);
    multi.predictor = PredictorKind::Popet;
    multi.hermesIssueEnabled = true;
    const RunStats mix = simulateMix(
        multi,
        {findTrace("spec06.mcf_like.0"), findTrace("ligra.bfs_like.0")},
        tinyBudget());
    EXPECT_EQ(statsFingerprint(mix), legacyFingerprint(mix));
}

TEST(StatRegistry, FingerprintMatchesLegacyOnSyntheticStats)
{
    // Distinct values in every counter: any ordering or coverage drift
    // between the registry plan and the legacy hash shows up here.
    for (const std::size_t cores : {std::size_t{1}, std::size_t{4}}) {
        const RunStats s = syntheticStats(cores);
        EXPECT_EQ(statsFingerprint(s), legacyFingerprint(s)) << cores;
    }
}

TEST(StatRegistry, FingerprintIgnoresHostPerfAndConfigEchoes)
{
    RunStats s = syntheticStats(2);
    const std::uint64_t base = statsFingerprint(s);
    s.hostPerf.seconds = 123.0;
    s.hostPerf.instrs = 456;
    s.dramChannels += 7;
    s.dramBusCyclesPerLine += 9;
    EXPECT_EQ(statsFingerprint(s), base);
}

TEST(StatRegistry, CsvAndJsonRowsMatchLegacyAcrossQuickSuite)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = PrefetcherKind::Pythia;
    cfg.predictor = PredictorKind::Popet;
    cfg.hermesIssueEnabled = true;
    for (const TraceSpec &t : quickSuite()) {
        const RunStats s = simulateOne(cfg, t, tinyBudget());
        EXPECT_EQ(formatCsvRow(t.name(), s),
                  legacyCsvRow(t.name(), s))
            << t.name();
    }
    // The pinned pre-refactor header, byte for byte.
    EXPECT_EQ(csvHeader(),
              "label,cycles,instrs,ipc,llc_mpki,loads,offchip_loads,"
              "pred_accuracy,pred_coverage,dram_reads,dram_writes,"
              "hermes_issued,hermes_useful,hermes_dropped,pf_issued,"
              "pf_useful,power_mw");
    EXPECT_EQ(csvHeader(true),
              csvHeader() + std::string(",sim_mips,host_seconds"));
}

TEST(StatRegistry, DerivedMetricsAreZeroOnEmptyInputs)
{
    // Placeholder rows (e.g. grid points another shard owns) must
    // render every derived metric as 0 — never NaN or inf.
    const RunStats empty;
    for (const StatDef &d : StatRegistry::instance().stats()) {
        if (d.getF64) {
            const double v = d.getF64(empty);
            EXPECT_TRUE(std::isfinite(v)) << d.key;
            EXPECT_EQ(v, 0.0) << d.key;
        }
        if (d.getAtF64) {
            for (const std::size_t i : {std::size_t{0}, std::size_t{9}}) {
                const double v = d.getAtF64(empty, i);
                EXPECT_TRUE(std::isfinite(v)) << d.key << "[" << i << "]";
                EXPECT_EQ(v, 0.0) << d.key << "[" << i << "]";
            }
        }
        if (d.getAtU64) {
            EXPECT_EQ(d.getAtU64(empty, 5), 0u) << d.key;
        }
    }

    // A window with cycles but nothing retired is equally safe.
    RunStats idle;
    idle.simCycles = 1000;
    idle.core.resize(2);
    idle.dramChannels = 1;
    idle.dramBusCyclesPerLine = 10;
    for (const StatDef &d : StatRegistry::instance().stats()) {
        if (d.getF64) {
            EXPECT_TRUE(std::isfinite(d.getF64(idle))) << d.key;
        }
    }
}

TEST(StatRegistry, DerivedMetricsComputeTheDocumentedRatios)
{
    RunStats s;
    s.simCycles = 1000;
    s.core.resize(2);
    s.core[0].instrsRetired = 3000;
    s.core[1].instrsRetired = 1000;
    s.core[0].loadsOffChip = 80;
    s.core[1].loadsOffChip = 20;
    s.hermesLoadsServed = 25;
    s.hermesRequestsScheduled = 50;
    s.dram.hermesIssued = 40;
    s.dram.demandReads = 60;
    s.dram.prefetchReads = 30;
    s.dram.hermesReads = 10;
    s.dram.writes = 100;
    s.dramChannels = 2;
    s.dramBusCyclesPerLine = 4;
    s.llc.loadLookups = 200;
    s.llc.loadHits = 150;

    EXPECT_DOUBLE_EQ(statF64(s, "core.ipc"), 4.0);
    EXPECT_DOUBLE_EQ(statF64(s, "llc.mpki"),
                     1000.0 * 50.0 / 4000.0);
    EXPECT_DOUBLE_EQ(statF64(s, "llc.hit_rate"), 0.75);
    EXPECT_DOUBLE_EQ(statF64(s, "hermes.issue_rate"), 0.8);
    EXPECT_DOUBLE_EQ(statF64(s, "hermes.served_rate"), 0.25);
    // (60+30+10+100) lines * 4 bus cycles / (1000 cycles * 2 channels)
    EXPECT_DOUBLE_EQ(statF64(s, "dram.bw_util"), 0.4);
    EXPECT_DOUBLE_EQ(statF64(s, "dram.reads"), 100.0);
    EXPECT_EQ(statU64(s, "core.instrs"), 4000u);
}

TEST(StatRegistry, ColumnSelectionGrammar)
{
    // Exact keys, per-core indexed forms and globs, in spec order.
    const auto cols =
        selectStatColumns(" core.ipc, core.0.ipc,pred.t?,dram.row_*");
    ASSERT_EQ(cols.size(), 7u);
    EXPECT_EQ(cols[0].name, "core_ipc");
    EXPECT_EQ(cols[0].coreIndex, -1);
    EXPECT_EQ(cols[1].name, "core_0_ipc");
    EXPECT_EQ(cols[1].coreIndex, 0);
    EXPECT_EQ(cols[2].name, "pred_tp");
    EXPECT_EQ(cols[3].name, "pred_tn");
    EXPECT_EQ(cols[4].name, "dram_row_hits");
    EXPECT_EQ(cols[5].name, "dram_row_misses");
    EXPECT_EQ(cols[6].name, "dram_row_conflicts");

    RunStats s;
    s.simCycles = 100;
    s.core.resize(1);
    s.core[0].instrsRetired = 250;
    s.coreFinishCycle = {100};
    EXPECT_EQ(statColumnValue(cols[0], s), "2.5");
    EXPECT_EQ(statColumnValue(cols[1], s), "2.5");
    // Out-of-range per-core reads render as 0 (shard placeholders).
    const auto far = selectStatColumns("core.7.instrs");
    EXPECT_EQ(statColumnValue(far[0], s), "0");

    EXPECT_THROW(selectStatColumns(""), std::invalid_argument);
    EXPECT_THROW(selectStatColumns("core.ipc,,cycles"),
                 std::invalid_argument);
    EXPECT_THROW(selectStatColumns("no.such.glob*"),
                 std::invalid_argument);
    EXPECT_THROW(selectStatColumns("cycles.0"), std::invalid_argument);
    // An overflowing index must fail as a bad spec, not escape as
    // std::out_of_range past the CLIs' invalid_argument handlers.
    EXPECT_THROW(
        selectStatColumns("core.99999999999999999999.ipc"),
        std::invalid_argument);
    // Indexing a non-per-core statistic is an error.
    EXPECT_THROW(selectStatColumns("llc.0.load_lookups"),
                 std::invalid_argument);
    try {
        selectStatColumns("core.ipcc");
        FAIL() << "unknown key must be rejected";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("core.ipc"),
                  std::string::npos)
            << e.what();
    }
}

TEST(StatRegistry, HostPerfColumnsAppendWithoutDuplicating)
{
    // --mips keeps its sim_mips/host_seconds dump columns when a
    // --stats selection is active, without doubling an explicit pick.
    auto cols = selectStatColumns("core.ipc");
    appendHostPerfColumns(cols);
    ASSERT_EQ(cols.size(), 3u);
    EXPECT_EQ(cols[1].name, "sim_mips");
    EXPECT_EQ(cols[2].name, "host_seconds");

    auto picked = selectStatColumns("host.seconds,core.ipc");
    appendHostPerfColumns(picked);
    ASSERT_EQ(picked.size(), 3u); // only sim_mips was missing
    EXPECT_EQ(picked[2].name, "sim_mips");
}

TEST(StatRegistry, SelectedColumnsRenderTheSameValuesAsDefaults)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = PrefetcherKind::Pythia;
    const RunStats s =
        simulateOne(cfg, findTrace("ligra.bfs_like.0"), tinyBudget());
    // A selection naming the default columns' keys produces the same
    // values (only the header names differ: keys vs legacy aliases).
    const auto sel = selectStatColumns("cycles,core.instrs,core.ipc");
    const std::string row = formatCsvRow("x", s, sel);
    const std::string def = formatCsvRow("x", s);
    EXPECT_EQ(row, def.substr(0, row.size()));
    EXPECT_EQ(csvHeader(sel), "label,cycles,core_instrs,core_ipc");

    // JSON and CSV render identical value strings per column.
    const std::string json = formatJsonRow("x", s, sel);
    for (const StatColumn &c : sel)
        EXPECT_NE(json.find("\"" + c.name +
                            "\":" + statColumnValue(c, s)),
                  std::string::npos)
            << c.name;
}

} // namespace
} // namespace hermes
