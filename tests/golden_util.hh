#pragma once

// Shared helpers for the golden-fingerprint layer. The pinned budget,
// the golden file location and its loader live here so
// test_determinism.cc (which owns regeneration via
// HERMES_UPDATE_GOLDEN) and test_param_registry.cc (which compares the
// string-built configuration path against the same goldens) can never
// drift apart. The CI hermes_run smoke mirrors goldenBudget() as
// --warmup 5000 --instrs 20000.

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "sim/simulator.hh"

#ifndef HERMES_TESTS_DIR
#define HERMES_TESTS_DIR "tests"
#endif

namespace hermes::golden
{

/** The budget every golden fingerprint was captured with. */
inline SimBudget
goldenBudget()
{
    SimBudget b;
    b.warmupInstrs = 5'000;
    b.simInstrs = 20'000;
    return b;
}

inline std::string
goldenPath()
{
    return std::string(HERMES_TESTS_DIR) + "/golden/fingerprints.txt";
}

/** Parse "key hex" lines; '#' comments and blanks are skipped. */
inline std::map<std::string, std::uint64_t>
loadGoldens()
{
    std::map<std::string, std::uint64_t> out;
    std::ifstream in(goldenPath());
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key, hex;
        if (ls >> key >> hex)
            out[key] = std::stoull(hex, nullptr, 16);
    }
    return out;
}

} // namespace hermes::golden
