// Event-horizon fast-forward determinism (docs/performance.md):
//  1. running with the fast-forward disabled (HERMES_NO_EVENT_SKIP=1,
//     every cycle ticked) produces bit-identical statistics to the
//     skipping loop, across predictors, prefetchers and a multi-core
//     mix — and the single-core Hermes case also matches the pinned
//     golden fingerprint, so neither loop can drift silently;
//  2. every component's nextEventCycle(now) honours the contract's
//     floor — always at least now + 1, monotone in `now` for a fixed
//     state — checked cycle-by-cycle against the live machine, as is
//     the whole-machine horizon System::nextEventHorizon().

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "golden_util.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sim/system.hh"
#include "trace/suite.hh"

namespace hermes
{
namespace
{

using golden::goldenBudget;
using golden::loadGoldens;

struct HorizonCase
{
    std::string key;
    SystemConfig config;
    std::vector<TraceSpec> traces;
};

/**
 * The same predictor x prefetcher spread the session checkpoint tests
 * use (test_session.cc), on the golden budget so the single-core
 * Hermes case pins against tests/golden/fingerprints.txt.
 */
std::vector<HorizonCase>
horizonCases()
{
    const TraceSpec mcf = findTrace("spec06.mcf_like.0");
    const TraceSpec stream = findTrace("parsec.streamcluster_like.0");

    SystemConfig popet_pythia = SystemConfig::baseline(1);
    popet_pythia.prefetcher = PrefetcherKind::Pythia;
    popet_pythia.predictor = PredictorKind::Popet;
    popet_pythia.hermesIssueEnabled = true;

    SystemConfig popet_streamer = popet_pythia;
    popet_streamer.prefetcher = PrefetcherKind::Streamer;

    SystemConfig hmp_spp = SystemConfig::baseline(1);
    hmp_spp.prefetcher = PrefetcherKind::Spp;
    hmp_spp.predictor = PredictorKind::Hmp;
    hmp_spp.hermesIssueEnabled = true;

    SystemConfig mix_cfg = SystemConfig::baseline(2);
    mix_cfg.prefetcher = PrefetcherKind::Pythia;
    mix_cfg.predictor = PredictorKind::Popet;
    mix_cfg.hermesIssueEnabled = true;

    return {
        {"one.hermes.mcf", popet_pythia, {mcf}},
        {"popet.streamer", popet_streamer, {stream}},
        {"hmp.spp", hmp_spp, {mcf}},
        {"mix2.hermes", mix_cfg, {mcf, stream}},
    };
}

/** Fingerprint of one full run, with the fast-forward on or off.
 * The knob is read at System construction, so it is toggled around
 * build() and restored before returning. */
std::uint64_t
runFingerprint(const HorizonCase &c, bool skip_enabled)
{
    if (skip_enabled)
        unsetenv("HERMES_NO_EVENT_SKIP");
    else
        setenv("HERMES_NO_EVENT_SKIP", "1", 1);
    SimSession s(c.config, c.traces, goldenBudget());
    s.build();
    unsetenv("HERMES_NO_EVENT_SKIP");
    s.warmup();
    s.measure();
    return statsFingerprint(s.collect());
}

TEST(EventHorizon, SkipDisabledMatchesSkipEnabled)
{
    for (const HorizonCase &c : horizonCases()) {
        const std::uint64_t ticked = runFingerprint(c, false);
        const std::uint64_t skipped = runFingerprint(c, true);
        ASSERT_NE(ticked, 0u) << c.key;
        EXPECT_EQ(skipped, ticked)
            << c.key << ": the event-horizon fast-forward changed "
            << "simulated statistics";
    }
}

TEST(EventHorizon, SkipDisabledMatchesGoldenFile)
{
    // Anchor both loops to the pinned golden: if the cycle-by-cycle
    // loop and the skipping loop ever drifted together, the pairwise
    // test above would still pass — the golden file would not.
    const auto golden = loadGoldens();
    ASSERT_FALSE(golden.empty());
    const auto it = golden.find("one.hermes.mcf");
    ASSERT_NE(it, golden.end());

    const HorizonCase c = horizonCases()[0];
    ASSERT_EQ(c.key, "one.hermes.mcf");
    EXPECT_EQ(runFingerprint(c, false), it->second);
}

TEST(EventHorizon, ComponentBoundsHoldCycleByCycle)
{
    // Drive the machine one cycle at a time (no fast-forward) and
    // check the horizon contract against the live state: every
    // component's bound is at least now + 1, monotone in `now` for
    // the state it was computed against, and the whole-machine
    // horizon is their floor.
    const HorizonCase c = horizonCases()[0];
    std::vector<std::unique_ptr<Workload>> w;
    for (const TraceSpec &spec : c.traces)
        w.push_back(spec.make());
    System sys(c.config, std::move(w));
    sys.setEventSkip(false);

    for (int i = 0; i < 20'000; ++i) {
        const Cycle now = sys.now();
        const Cycle core = sys.coreAt(0).nextEventCycle(now);
        const Cycle l1 = sys.l1At(0).nextEventCycle(now);
        const Cycle l2 = sys.l2At(0).nextEventCycle(now);
        const Cycle llc = sys.llc().nextEventCycle(now);
        const Cycle dram = sys.dram().nextEventCycle(now);
        ASSERT_GE(core, now + 1) << "core bound below floor at " << now;
        ASSERT_GE(l1, now + 1) << "L1 bound below floor at " << now;
        ASSERT_GE(l2, now + 1) << "L2 bound below floor at " << now;
        ASSERT_GE(llc, now + 1) << "LLC bound below floor at " << now;
        ASSERT_GE(dram, now + 1) << "DRAM bound below floor at " << now;

        // Monotone in `now` against a fixed state: asking the same
        // component about a later cycle never yields an earlier bound.
        ASSERT_GE(sys.coreAt(0).nextEventCycle(now + 1), core);
        ASSERT_GE(sys.dram().nextEventCycle(now + 1), dram);

        const Cycle horizon = sys.nextEventHorizon();
        ASSERT_GE(horizon, now + 1) << "horizon below floor at " << now;
        ASSERT_LE(horizon, core);
        ASSERT_LE(horizon, l1);
        ASSERT_LE(horizon, l2);
        ASSERT_LE(horizon, llc);
        ASSERT_LE(horizon, dram);

        sys.tick();
        ASSERT_EQ(sys.now(), now + 1);
    }
}

} // namespace
} // namespace hermes
