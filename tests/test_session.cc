// Checkpoint determinism tests for the SimSession snapshot/restore
// seam and the warmup checkpoint store:
//  1. snapshot -> restore -> measure reproduces the straight-run
//     fingerprint exactly, across predictors, prefetchers and a
//     multi-core mix — including against the pinned golden file, so a
//     restore that silently perturbs state fails the same way a
//     hot-path regression would;
//  2. corrupt, truncated, wrong-version, wrong-magic and
//     wrong-identity checkpoints are rejected (restore returns false)
//     and the session re-simulates to the correct result;
//  3. warmupFingerprint() keys on warmup-affecting state only:
//     measure-only parameters (hermes.issue_latency, simInstrs) leave
//     it unchanged, warmup-affecting ones (predictor, warmup window)
//     change it;
//  4. the WarmupCache round-trips warmed state through disk, unlinks
//     bad entries, evicts past its budget and rejects malformed specs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "golden_util.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sim/warmup_cache.hh"
#include "trace/suite.hh"
#include "trace/trace_io.hh"

namespace hermes
{
namespace
{

using golden::goldenBudget;
using golden::loadGoldens;

/** In-memory ByteSink so checkpoint bytes can be inspected/mutated. */
class VectorSink : public ByteSink
{
  public:
    void write(const void *data, std::size_t size) override
    {
        const auto *p = static_cast<const char *>(data);
        bytes.insert(bytes.end(), p, p + size);
    }
    void finish() override {}
    const std::string &path() const override { return path_; }

    std::vector<char> bytes;

  private:
    std::string path_ = "<memory>";
};

/** In-memory ByteSource over a byte vector. */
class VectorSource : public ByteSource
{
  public:
    explicit VectorSource(std::vector<char> bytes)
        : bytes_(std::move(bytes))
    {
    }

    std::size_t read(void *data, std::size_t size) override
    {
        const std::size_t n = std::min(size, bytes_.size() - pos_);
        std::memcpy(data, bytes_.data() + pos_, n);
        pos_ += n;
        return n;
    }
    void rewind() override { pos_ = 0; }
    const std::string &path() const override { return path_; }
    Compression compression() const override { return Compression::None; }
    std::int64_t sizeHint() const override
    {
        return static_cast<std::int64_t>(bytes_.size());
    }

  private:
    std::vector<char> bytes_;
    std::size_t pos_ = 0;
    std::string path_ = "<memory>";
};

struct SessionCase
{
    std::string key;
    SystemConfig config;
    std::vector<TraceSpec> traces;
};

/**
 * >= 2 predictors x >= 2 prefetchers plus a heterogeneous 2-core mix,
 * all on the golden budget so the single-core Hermes case can also be
 * pinned against tests/golden/fingerprints.txt.
 */
std::vector<SessionCase>
sessionCases()
{
    const TraceSpec mcf = findTrace("spec06.mcf_like.0");
    const TraceSpec stream = findTrace("parsec.streamcluster_like.0");

    SystemConfig popet_pythia = SystemConfig::baseline(1);
    popet_pythia.prefetcher = PrefetcherKind::Pythia;
    popet_pythia.predictor = PredictorKind::Popet;
    popet_pythia.hermesIssueEnabled = true;

    SystemConfig popet_streamer = popet_pythia;
    popet_streamer.prefetcher = PrefetcherKind::Streamer;

    SystemConfig hmp_spp = SystemConfig::baseline(1);
    hmp_spp.prefetcher = PrefetcherKind::Spp;
    hmp_spp.predictor = PredictorKind::Hmp;
    hmp_spp.hermesIssueEnabled = true;

    SystemConfig mix_cfg = SystemConfig::baseline(2);
    mix_cfg.prefetcher = PrefetcherKind::Pythia;
    mix_cfg.predictor = PredictorKind::Popet;
    mix_cfg.hermesIssueEnabled = true;

    return {
        {"one.hermes.mcf", popet_pythia, {mcf}},
        {"popet.streamer", popet_streamer, {stream}},
        {"hmp.spp", hmp_spp, {mcf}},
        {"mix2.hermes", mix_cfg, {mcf, stream}},
    };
}

std::uint64_t
straightRunFingerprint(const SessionCase &c)
{
    SimSession s(c.config, c.traces, goldenBudget());
    s.build();
    s.warmup();
    s.measure();
    return statsFingerprint(s.collect());
}

/** Snapshot a freshly warmed session of @p c into a byte vector. */
std::vector<char>
snapshotBytes(const SessionCase &c)
{
    SimSession s(c.config, c.traces, goldenBudget());
    s.build();
    s.warmup();
    VectorSink sink;
    s.snapshot(sink);
    return sink.bytes;
}

TEST(Session, SnapshotRestoreMeasureMatchesStraightRun)
{
    for (const SessionCase &c : sessionCases()) {
        const std::uint64_t straight = straightRunFingerprint(c);
        ASSERT_NE(straight, 0u) << c.key;

        const std::vector<char> bytes = snapshotBytes(c);
        ASSERT_GT(bytes.size(), 20u) << c.key;

        SimSession restored(c.config, c.traces, goldenBudget());
        restored.build();
        ASSERT_TRUE(restored.checkpointable()) << c.key;
        VectorSource src(bytes);
        ASSERT_TRUE(restored.restore(src)) << c.key;
        restored.measure();
        EXPECT_EQ(statsFingerprint(restored.collect()), straight)
            << c.key << ": restore-from-checkpoint diverged from a "
            << "straight run";
    }
}

TEST(Session, ShimsAndSessionAgreeWithGoldenFile)
{
    // The legacy helpers are shims over SimSession; both paths (and a
    // restored session) must reproduce the pinned golden fingerprint
    // for the case test_determinism.cc also runs.
    const auto golden = loadGoldens();
    ASSERT_FALSE(golden.empty());
    const auto it = golden.find("one.hermes.mcf");
    ASSERT_NE(it, golden.end());

    const SessionCase c = sessionCases()[0];
    ASSERT_EQ(c.key, "one.hermes.mcf");

    EXPECT_EQ(straightRunFingerprint(c), it->second);
    EXPECT_EQ(statsFingerprint(
                  simulateOne(c.config, c.traces[0], goldenBudget())),
              it->second);

    SimSession restored(c.config, c.traces, goldenBudget());
    restored.build();
    VectorSource src(snapshotBytes(c));
    ASSERT_TRUE(restored.restore(src));
    restored.measure();
    EXPECT_EQ(statsFingerprint(restored.collect()), it->second);
}

TEST(Session, PhaseOrderEnforced)
{
    const SessionCase c = sessionCases()[0];
    SimSession s(c.config, c.traces, goldenBudget());
    EXPECT_THROW(s.warmup(), std::logic_error);
    EXPECT_THROW(s.measure(), std::logic_error);
    s.build();
    EXPECT_THROW(s.build(), std::logic_error);
    EXPECT_THROW(s.measure(), std::logic_error);
    VectorSink sink;
    EXPECT_THROW(s.snapshot(sink), std::logic_error);
    s.warmup();
    EXPECT_THROW(s.warmup(), std::logic_error);
    s.measure();
    EXPECT_THROW(s.measure(), std::logic_error);

    EXPECT_THROW(SimSession(c.config, {}, goldenBudget()),
                 std::invalid_argument);
}

/** Restore must fail cleanly and the fallback warmup must be exact. */
void
expectRejectedThenResimulates(const SessionCase &c,
                              std::vector<char> bytes,
                              const char *what)
{
    const std::uint64_t straight = straightRunFingerprint(c);
    SimSession s(c.config, c.traces, goldenBudget());
    s.build();
    VectorSource src(std::move(bytes));
    EXPECT_FALSE(s.restore(src)) << what << " accepted";
    // The failed restore left the session built; the normal path must
    // still produce the exact straight-run result.
    s.warmup();
    s.measure();
    EXPECT_EQ(statsFingerprint(s.collect()), straight)
        << what << ": re-simulation after rejected restore diverged";
}

TEST(Session, BadCheckpointsRejectedAndResimulated)
{
    const SessionCase c = sessionCases()[0];
    const std::vector<char> good = snapshotBytes(c);
    ASSERT_GT(good.size(), 32u);

    {
        // Flipping a byte in the component payload trips the checksum.
        std::vector<char> corrupt = good;
        corrupt[good.size() / 2] ^= 0x5a;
        expectRejectedThenResimulates(c, corrupt, "corrupt payload");
    }
    {
        std::vector<char> truncated(good.begin(),
                                    good.begin() + good.size() / 2);
        expectRejectedThenResimulates(c, truncated, "truncated stream");
    }
    {
        std::vector<char> trailing = good;
        trailing.push_back('x');
        expectRejectedThenResimulates(c, trailing, "trailing garbage");
    }
    {
        // Byte 0 of the magic ("HRMCKPT1" leads every stream).
        std::vector<char> magic = good;
        magic[0] ^= 0x01;
        expectRejectedThenResimulates(c, magic, "bad magic");
    }
    {
        // The u32 format version immediately follows the 8-byte magic.
        std::vector<char> version = good;
        version[8] ^= 0x01;
        expectRejectedThenResimulates(c, version, "version mismatch");
    }
    {
        EXPECT_TRUE(std::string(SimSession::kCheckpointMagic) ==
                    std::string(good.data(), 8));
    }
}

TEST(Session, WrongIdentityCheckpointRejected)
{
    // A checkpoint from a different warmup identity (hmp+spp) must not
    // restore into a popet+pythia session.
    const auto cases = sessionCases();
    const SessionCase &target = cases[0];
    const SessionCase &other = cases[2];

    SimSession s(target.config, target.traces, goldenBudget());
    s.build();
    VectorSource src(snapshotBytes(other));
    EXPECT_FALSE(s.restore(src));
    s.warmup();
    s.measure();
    EXPECT_EQ(statsFingerprint(s.collect()),
              straightRunFingerprint(target));
}

TEST(Session, WarmupFingerprintTracksWarmupAffectingStateOnly)
{
    const SessionCase base = sessionCases()[0];
    auto fp = [&base](SystemConfig cfg, SimBudget b) {
        SimSession s(std::move(cfg), base.traces, b);
        return s.warmupFingerprint();
    };
    const std::uint64_t ref = fp(base.config, goldenBudget());

    // Measure-only knobs: same identity, so checkpoints are shared
    // across these sweep points.
    SimBudget longer_measure = goldenBudget();
    longer_measure.simInstrs *= 2;
    EXPECT_EQ(fp(base.config, longer_measure), ref);

    // Warmup-affecting knobs: distinct identities.
    SystemConfig other_pred = base.config;
    other_pred.predictor = PredictorKind::Hmp;
    EXPECT_NE(fp(other_pred, goldenBudget()), ref);

    SystemConfig other_pf = base.config;
    other_pf.prefetcher = PrefetcherKind::Streamer;
    EXPECT_NE(fp(other_pf, goldenBudget()), ref);

    SimBudget longer_warmup = goldenBudget();
    longer_warmup.warmupInstrs *= 2;
    EXPECT_NE(fp(base.config, longer_warmup), ref);

    // hermes.issue_latency *does* matter when requests issue during
    // warmup (the default): the warmed state depends on it...
    SystemConfig warm_issue_lat = base.config;
    warm_issue_lat.hermesIssueLatency = 18;
    ASSERT_TRUE(base.config.hermesWarmupIssue);
    EXPECT_NE(fp(warm_issue_lat, goldenBudget()), ref);

    // ...but gating warmup issue makes it measure-only: this is the
    // identity-sharing a post-warmup latency sweep relies on.
    SystemConfig gated = base.config;
    gated.hermesWarmupIssue = false;
    SystemConfig gated_lat = gated;
    gated_lat.hermesIssueLatency = 18;
    EXPECT_EQ(fp(gated_lat, goldenBudget()), fp(gated, goldenBudget()));

    // A different trace is a different warmed machine.
    SimSession other_trace(
        base.config, {findTrace("parsec.streamcluster_like.0")},
        goldenBudget());
    EXPECT_NE(other_trace.warmupFingerprint(), ref);
}

std::string
tempDir(const std::string &name)
{
    const std::string dir =
        ::testing::TempDir() + "hermes_warmup_" + name;
    std::string cmd = "rm -rf '" + dir + "'";
    if (std::system(cmd.c_str()) != 0)
        ADD_FAILURE() << "cannot clear " << dir;
    return dir;
}

TEST(WarmupCacheTest, RoundTripSharesOneWarmup)
{
    SessionCase c = sessionCases()[0];
    // Gate Hermes issue out of warmup so hermes.issue_latency becomes
    // measure-only and the latency sweep below shares one checkpoint.
    c.config.hermesWarmupIssue = false;
    WarmupCache cache({tempDir("roundtrip")});

    SimSession cold(c.config, c.traces, goldenBudget());
    const RunStats first = runSession(cold, &cache);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().stores, 1u);
    EXPECT_EQ(cache.entryCount(), 1u);

    SimSession warm(c.config, c.traces, goldenBudget());
    const RunStats second = runSession(warm, &cache);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().stores, 1u);
    EXPECT_EQ(statsFingerprint(second), statsFingerprint(first));

    // A measure-only variation shares the same checkpoint...
    SessionCase latency = c;
    latency.config.hermesIssueLatency = 18;
    SimSession shared(latency.config, latency.traces, goldenBudget());
    runSession(shared, &cache);
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.entryCount(), 1u);

    // ...and its stats equal an uncached run of the same point.
    SimSession uncached(latency.config, latency.traces, goldenBudget());
    EXPECT_EQ(statsFingerprint(shared.collect()),
              statsFingerprint(runSession(uncached, nullptr)));
}

TEST(WarmupCacheTest, CorruptEntryUnlinkedAndRewarmed)
{
    const SessionCase c = sessionCases()[0];
    const std::string dir = tempDir("corrupt");
    WarmupCache cache({dir});

    SimSession cold(c.config, c.traces, goldenBudget());
    const std::uint64_t straight =
        statsFingerprint(runSession(cold, &cache));
    const std::string entry =
        dir + "/" + WarmupCache::entryName(cold.warmupFingerprint());
    {
        std::ofstream out(entry, std::ios::binary | std::ios::trunc);
        out << "not a checkpoint";
    }

    SimSession again(c.config, c.traces, goldenBudget());
    EXPECT_EQ(statsFingerprint(runSession(again, &cache)), straight);
    EXPECT_EQ(cache.stats().rejected, 1u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().stores, 2u); // rewritten cleanly
    EXPECT_EQ(cache.entryCount(), 1u);
}

TEST(WarmupCacheTest, EvictsPastEntryBudget)
{
    const auto cases = sessionCases();
    WarmupCacheConfig cfg{tempDir("evict")};
    cfg.maxEntries = 1;
    WarmupCache cache(std::move(cfg));

    SimSession a(cases[0].config, cases[0].traces, goldenBudget());
    runSession(a, &cache);
    SimSession b(cases[2].config, cases[2].traces, goldenBudget());
    runSession(b, &cache);
    EXPECT_EQ(cache.stats().stores, 2u);
    EXPECT_EQ(cache.stats().evicted, 1u);
    EXPECT_EQ(cache.entryCount(), 1u);
}

TEST(WarmupCacheTest, SpecParser)
{
    const WarmupCacheConfig plain = parseWarmupCacheSpec("/tmp/wc");
    EXPECT_EQ(plain.dir, "/tmp/wc");
    EXPECT_EQ(plain.maxBytes, 0u);
    EXPECT_EQ(plain.maxEntries, 0u);

    const WarmupCacheConfig full =
        parseWarmupCacheSpec("/tmp/wc,max_bytes=64M,max_entries=9");
    EXPECT_EQ(full.maxBytes, 64ull * 1024 * 1024);
    EXPECT_EQ(full.maxEntries, 9u);

    EXPECT_THROW(parseWarmupCacheSpec(""), std::invalid_argument);
    EXPECT_THROW(parseWarmupCacheSpec("/d,max_bytes="),
                 std::invalid_argument);
    EXPECT_THROW(parseWarmupCacheSpec("/d,bogus=1"),
                 std::invalid_argument);

    EXPECT_EQ(WarmupCache::entryName(0xabcdef0123456789ull),
              "abcdef0123456789.ckpt");
}

} // namespace
} // namespace hermes
