// Tests for the DDR4 memory controller: timing classes, bus
// serialisation, merging, write handling and the Hermes datapath
// (merge / drop semantics, §6.2).

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/dram.hh"
#include "test_helpers.hh"

namespace hermes
{
namespace
{

using test::loadReq;
using test::RecordingClient;

struct DramHarness
{
    explicit DramHarness(DramParams p = DramParams{}) : dram(p)
    {
        dram.setClient(0, &client);
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i)
            dram.tick(++now);
    }

    /** Cycles until the next response arrives (asserts it does). */
    Cycle
    latencyOfNextResponse(Cycle limit = 2000)
    {
        const std::size_t before = client.responses.size();
        const Cycle start = now;
        while (client.responses.size() == before && now < start + limit)
            run(1);
        EXPECT_GT(client.responses.size(), before);
        return now - start;
    }

    DramController dram;
    RecordingClient client;
    Cycle now = 0;
};

TEST(Dram, ClosedRowLatency)
{
    DramHarness h;
    h.dram.addRead(loadReq(0x10000));
    // tRCD + tCAS + burst = 50 + 50 + 10 = 110.
    const Cycle lat = h.latencyOfNextResponse();
    EXPECT_GE(lat, 110u);
    EXPECT_LE(lat, 115u);
    EXPECT_EQ(h.dram.stats().rowMisses, 1u);
}

TEST(Dram, RowHitFasterThanConflict)
{
    DramHarness h;
    h.dram.addRead(loadReq(0x10000));
    h.latencyOfNextResponse();

    // Same row: row hit (tCAS + burst = 60).
    h.dram.addRead(loadReq(0x10040, 0x400000, 0, 2));
    const Cycle hit_lat = h.latencyOfNextResponse();
    EXPECT_GE(hit_lat, 60u);
    EXPECT_LE(hit_lat, 65u);
    EXPECT_EQ(h.dram.stats().rowHits, 1u);

    // Different row, same bank: conflict (tRP + tRCD + tCAS + burst).
    const DramParams &p = h.dram.params();
    const unsigned banks = p.ranksPerChannel * p.banksPerRank;
    const Addr conflict =
        0x10000 + static_cast<Addr>(p.rowBufferBytes) * banks;
    h.dram.addRead(loadReq(conflict, 0x400000, 0, 3));
    const Cycle conf_lat = h.latencyOfNextResponse();
    EXPECT_GE(conf_lat, 160u);
    EXPECT_EQ(h.dram.stats().rowConflicts, 1u);
}

TEST(Dram, RowHitsPipelineAtBusRate)
{
    DramHarness h;
    // 8 sequential lines in the same row: after the activation, each
    // additional line should cost ~the bus burst (10 cycles), not tCAS.
    for (int i = 0; i < 8; ++i)
        h.dram.addRead(loadReq(0x20000 + i * 64, 0x400000, 0, i + 1));
    const Cycle start = h.now;
    while (h.client.responses.size() < 8 && h.now < start + 2000)
        h.run(1);
    ASSERT_EQ(h.client.responses.size(), 8u);
    const Cycle total = h.now - start;
    // 110 for the first + ~7*10 for the rest, plus scheduling slack.
    EXPECT_LE(total, 110 + 7 * 10 + 30);
}

TEST(Dram, BankParallelismOverlapsActivations)
{
    DramHarness h;
    const DramParams &p = h.dram.params();
    // Two reads to different banks: total time well under 2x serial.
    h.dram.addRead(loadReq(0x10000, 0x400000, 0, 1));
    h.dram.addRead(loadReq(0x10000 + p.rowBufferBytes, 0x400000, 0, 2));
    const Cycle start = h.now;
    while (h.client.responses.size() < 2 && h.now < start + 2000)
        h.run(1);
    EXPECT_LT(h.now - start, 180u); // serial would be ~220
}

TEST(Dram, ReadsMergeOnSameLine)
{
    DramHarness h;
    h.dram.addRead(loadReq(0x30000, 0x400000, 0, 1));
    h.dram.addRead(loadReq(0x30000, 0x400004, 0, 2));
    h.run(300);
    EXPECT_EQ(h.client.responses.size(), 2u);
    EXPECT_EQ(h.dram.stats().demandReads, 1u);
    EXPECT_EQ(h.dram.stats().readMerges, 1u);
}

TEST(Dram, WriteQueueForwardsToReads)
{
    DramHarness h;
    MemRequest wb = loadReq(0x40000);
    wb.type = AccessType::Writeback;
    h.dram.addWrite(wb);
    h.run(1);
    h.dram.addRead(loadReq(0x40000, 0x400000, 0, 7));
    h.run(5);
    ASSERT_EQ(h.client.responses.size(), 1u); // forwarded immediately
    EXPECT_EQ(h.dram.stats().wqForwards, 1u);
}

TEST(Dram, WritesEventuallyDrain)
{
    DramHarness h;
    for (int i = 0; i < 10; ++i) {
        MemRequest wb = loadReq(0x50000 + i * 64);
        wb.type = AccessType::Writeback;
        h.dram.addWrite(wb);
    }
    h.run(3000);
    EXPECT_EQ(h.dram.stats().writes, 10u);
}

TEST(Dram, ReadQueueFullRejects)
{
    DramParams p;
    p.rqSize = 4;
    DramHarness h(p);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(h.dram.addRead(
            loadReq(0x100000 + i * 0x10000, 0x400000, 0, i + 1)));
    EXPECT_FALSE(h.dram.addRead(loadReq(0x900000, 0x400000, 0, 9)));
}

TEST(Dram, BandwidthScalesWithMtps)
{
    DramParams slow;
    slow.mtps = 200;
    DramParams fast;
    fast.mtps = 12800;
    EXPECT_GT(slow.busCyclesPerLine(), fast.busCyclesPerLine());
    EXPECT_EQ(DramParams{}.busCyclesPerLine(), 10u); // DDR4-3200 @ 4GHz
}

TEST(Dram, ChannelInterleavingByLine)
{
    DramParams p;
    p.channels = 4;
    DramHarness h(p);
    // 4 consecutive lines land in 4 different channels: all four can
    // be in flight with full parallelism.
    for (int i = 0; i < 4; ++i)
        h.dram.addRead(loadReq(i * 64, 0x400000, 0, i + 1));
    const Cycle start = h.now;
    while (h.client.responses.size() < 4 && h.now < start + 1000)
        h.run(1);
    EXPECT_LE(h.now - start, 130u); // ~one access, fully overlapped
}

// ---- Hermes datapath at the MC (paper §6.2) --------------------------

TEST(DramHermes, DroppedWhenNoRegularArrives)
{
    DramHarness h;
    MemRequest hq = loadReq(0x60000);
    hq.type = AccessType::Hermes;
    EXPECT_TRUE(h.dram.addHermes(hq));
    h.run(500);
    EXPECT_EQ(h.dram.stats().hermesIssued, 1u);
    EXPECT_EQ(h.dram.stats().hermesDropped, 1u);
    EXPECT_EQ(h.dram.stats().hermesUseful, 0u);
    // Crucially: no data was returned to any cache (no fill).
    EXPECT_TRUE(h.client.responses.empty());
}

TEST(DramHermes, RegularMergesIntoHermesAndCompletesEarlier)
{
    DramHarness h;
    MemRequest hq = loadReq(0x70000);
    hq.type = AccessType::Hermes;
    h.dram.addHermes(hq);
    h.run(49); // Hermes request under way (issue latency elapsed)

    h.dram.addRead(loadReq(0x70000, 0x400000, 0, 5));
    const Cycle lat = h.latencyOfNextResponse();
    ASSERT_EQ(h.client.responses.size(), 1u);
    EXPECT_TRUE(h.client.responses[0].servedByHermes);
    EXPECT_EQ(h.dram.stats().hermesUseful, 1u);
    EXPECT_EQ(h.dram.stats().hermesDropped, 0u);
    // The regular read waited only the residual latency (~110-49).
    EXPECT_LT(lat, 75u);
}

TEST(DramHermes, HermesMergesIntoExistingRead)
{
    DramHarness h;
    h.dram.addRead(loadReq(0x80000));
    MemRequest hq = loadReq(0x80000);
    hq.type = AccessType::Hermes;
    EXPECT_TRUE(h.dram.addHermes(hq));
    EXPECT_EQ(h.dram.stats().hermesMergedIntoExisting, 1u);
    EXPECT_EQ(h.dram.stats().hermesIssued, 0u);
    h.run(300);
    EXPECT_EQ(h.client.responses.size(), 1u);
    // The pre-existing demand read is not marked Hermes-served.
    EXPECT_FALSE(h.client.responses[0].servedByHermes);
}

TEST(DramHermes, RejectedWhenQueueFull)
{
    DramParams p;
    p.rqSize = 1;
    DramHarness h(p);
    h.dram.addRead(loadReq(0x10000));
    MemRequest hq = loadReq(0x90000);
    hq.type = AccessType::Hermes;
    EXPECT_FALSE(h.dram.addHermes(hq));
    EXPECT_EQ(h.dram.stats().hermesRejected, 1u);
}

TEST(DramHermes, CountsAsMainMemoryRequest)
{
    DramHarness h;
    MemRequest hq = loadReq(0xA0000);
    hq.type = AccessType::Hermes;
    h.dram.addHermes(hq);
    h.run(500);
    EXPECT_EQ(h.dram.stats().totalReads(), 1u);
    EXPECT_EQ(h.dram.stats().hermesReads, 1u);
}

/** Property: under random traffic every accepted read gets exactly one
 * response per waiter, and row stats partition all accesses. */
class DramRandomTraffic : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DramRandomTraffic, ConservesRequests)
{
    DramParams p;
    p.channels = GetParam();
    DramHarness h(p);
    Rng rng(99);
    unsigned accepted = 0;
    for (int i = 0; i < 400; ++i) {
        const Addr addr = (rng.below(1 << 16)) << 6;
        if (rng.chance(0.2)) {
            MemRequest wb = loadReq(addr);
            wb.type = AccessType::Writeback;
            h.dram.addWrite(wb);
        } else if (h.dram.addRead(loadReq(addr, 0x400000, 0, i))) {
            ++accepted;
        }
        h.run(3);
    }
    h.run(30000);
    EXPECT_EQ(h.client.responses.size(), accepted);
    const auto &s = h.dram.stats();
    EXPECT_EQ(s.rowHits + s.rowMisses + s.rowConflicts,
              s.totalReads() + s.writes);
}

INSTANTIATE_TEST_SUITE_P(Channels, DramRandomTraffic,
                         ::testing::Values(1u, 2u, 4u));

} // namespace
} // namespace hermes
