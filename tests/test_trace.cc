// Tests for the synthetic trace substrate: determinism, instruction-mix
// sanity, dependence wiring and the suite registry.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/suite.hh"
#include "trace/synthetic.hh"

namespace hermes
{
namespace
{

TEST(Trace, DeterministicForSameParams)
{
    const TraceSpec spec = findTrace("ligra.bfs_like.0");
    auto a = spec.make();
    auto b = spec.make();
    for (int i = 0; i < 20000; ++i) {
        const TraceInstr x = a->next();
        const TraceInstr y = b->next();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind));
        ASSERT_EQ(x.vaddr, y.vaddr);
        ASSERT_EQ(x.branchTaken, y.branchTaken);
        ASSERT_EQ(x.depDistance, y.depDistance);
    }
}

TEST(Trace, CloneWithSeedOffsetDiverges)
{
    const TraceSpec spec = findTrace("cvp.server_db_like.0");
    auto a = spec.make();
    auto b = a->clone(1);
    EXPECT_EQ(b->name(), a->name());
    int same = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        const TraceInstr x = a->next();
        const TraceInstr y = b->next();
        same += (x.vaddr == y.vaddr &&
                 x.kind == y.kind);
    }
    EXPECT_LT(same, n);
}

TEST(Trace, CloneWithZeroOffsetIsIdentical)
{
    const TraceSpec spec = findTrace("spec06.gcc_like.0");
    auto a = spec.make();
    auto b = a->clone(0);
    for (int i = 0; i < 2000; ++i)
        ASSERT_EQ(a->next().vaddr, b->next().vaddr);
}

TEST(Trace, ChaseLoadsAreSerialised)
{
    SyntheticParams p;
    p.pattern = Pattern::PointerChase;
    p.chaseChains = 1;
    p.hitLoadFraction = 0;
    p.storeFraction = 0;
    SyntheticWorkload wl(p);

    // Collect instructions and verify every chase load (except the
    // first) depends on an older *load*.
    std::vector<TraceInstr> instrs;
    for (int i = 0; i < 5000; ++i)
        instrs.push_back(wl.next());
    int chase_loads = 0;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const auto &t = instrs[i];
        if (t.kind != InstrKind::Load || t.depDistance == 0)
            continue;
        ++chase_loads;
        ASSERT_GE(i, t.depDistance);
        const auto &producer = instrs[i - t.depDistance];
        EXPECT_EQ(static_cast<int>(producer.kind),
                  static_cast<int>(InstrKind::Load));
    }
    EXPECT_GT(chase_loads, 100);
}

TEST(Trace, MlpLimitCreatesLoadChains)
{
    SyntheticParams p;
    p.pattern = Pattern::Stream;
    p.loadMlp = 4;
    p.storeFraction = 0;
    SyntheticWorkload wl(p);
    std::vector<TraceInstr> instrs;
    for (int i = 0; i < 3000; ++i)
        instrs.push_back(wl.next());
    int chained = 0;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const auto &t = instrs[i];
        if (t.kind == InstrKind::Load && t.depDistance > 0) {
            ASSERT_GE(i, t.depDistance);
            EXPECT_EQ(static_cast<int>(instrs[i - t.depDistance].kind),
                      static_cast<int>(InstrKind::Load));
            ++chained;
        }
    }
    EXPECT_GT(chained, 100);
}

TEST(Trace, StreamSweepsSequentially)
{
    SyntheticParams p;
    p.pattern = Pattern::Stream;
    p.strideBytes = 8;
    p.storeFraction = 0;
    SyntheticWorkload wl(p);
    Addr prev = 0;
    bool first = true;
    for (int i = 0; i < 10000; ++i) {
        const TraceInstr t = wl.next();
        if (t.kind != InstrKind::Load)
            continue;
        if (!first) {
            EXPECT_EQ(t.vaddr, prev + 8);
        }
        prev = t.vaddr;
        first = false;
    }
}

TEST(Trace, StreamWrapsAtFootprint)
{
    SyntheticParams p;
    p.pattern = Pattern::Stream;
    p.footprintBytes = kPageSize; // minimal footprint
    p.strideBytes = 512;
    p.storeFraction = 0;
    SyntheticWorkload wl(p);
    std::set<Addr> offsets;
    for (int i = 0; i < 1000; ++i) {
        const TraceInstr t = wl.next();
        if (t.kind == InstrKind::Load)
            offsets.insert(t.vaddr & (kPageSize - 1));
    }
    EXPECT_EQ(offsets.size(), kPageSize / 512);
}

TEST(Trace, LoopBranchesMostlyTaken)
{
    SyntheticParams p;
    p.pattern = Pattern::Stream;
    p.dataBranchFraction = 0;
    SyntheticWorkload wl(p);
    int taken = 0, total = 0;
    for (int i = 0; i < 50000; ++i) {
        const TraceInstr t = wl.next();
        if (t.kind == InstrKind::Branch) {
            ++total;
            taken += t.branchTaken;
        }
    }
    ASSERT_GT(total, 100);
    EXPECT_GT(static_cast<double>(taken) / total, 0.9);
}

TEST(Trace, SuiteHasFiveCategories)
{
    std::set<std::string> cats;
    for (const auto &spec : fullSuite())
        cats.insert(spec.category());
    EXPECT_EQ(cats.size(), 5u);
    for (const auto &c : suiteCategories())
        EXPECT_TRUE(cats.count(c)) << c;
}

TEST(Trace, SuiteNamesUnique)
{
    std::set<std::string> names;
    for (const auto &spec : fullSuite())
        EXPECT_TRUE(names.insert(spec.name()).second) << spec.name();
    EXPECT_GE(names.size(), 28u);
}

TEST(Trace, QuickSuiteIsSubsetOfFull)
{
    std::set<std::string> full;
    for (const auto &spec : fullSuite())
        full.insert(spec.name());
    for (const auto &spec : quickSuite())
        EXPECT_TRUE(full.count(spec.name())) << spec.name();
}

TEST(Trace, FindTraceThrowsOnUnknown)
{
    EXPECT_THROW(findTrace("definitely.not.a.trace"),
                 std::out_of_range);
}

/** Property sweep: every suite trace emits a sane instruction mix. */
class TraceMixTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TraceMixTest, InstructionMixIsSane)
{
    const TraceSpec spec = findTrace(GetParam());
    auto wl = spec.make();
    std::map<InstrKind, int> mix;
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        ++mix[wl->next().kind];

    const double loads = mix[InstrKind::Load];
    const double stores = mix[InstrKind::Store];
    const double branches = mix[InstrKind::Branch];
    // Loads between 4% and 60%; branches present but bounded; stores
    // never dominate loads.
    EXPECT_GT(loads / n, 0.04);
    EXPECT_LT(loads / n, 0.60);
    EXPECT_GT(branches / n, 0.005);
    EXPECT_LT(branches / n, 0.40);
    EXPECT_LT(stores, loads);
}

TEST_P(TraceMixTest, DependencesPointBackwardsAtLoads)
{
    const TraceSpec spec = findTrace(GetParam());
    auto wl = spec.make();
    std::vector<TraceInstr> instrs;
    for (int i = 0; i < 20000; ++i)
        instrs.push_back(wl->next());
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const auto &t = instrs[i];
        if (t.depDistance == 0)
            continue;
        ASSERT_LE(t.depDistance, i) << "dangling dependence";
        EXPECT_EQ(static_cast<int>(instrs[i - t.depDistance].kind),
                  static_cast<int>(InstrKind::Load));
    }
}

std::vector<std::string>
allTraceNames()
{
    std::vector<std::string> names;
    for (const auto &spec : fullSuite())
        names.push_back(spec.name());
    return names;
}

INSTANTIATE_TEST_SUITE_P(Suite, TraceMixTest,
                         ::testing::ValuesIn(allTraceNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (c == '.' || c == '-')
                                     c = '_';
                             return n;
                         });

} // namespace
} // namespace hermes
