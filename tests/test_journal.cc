// Tests for the journaled sweep store and the shard/resume/merge
// orchestration layer: byte-identical shard unions, resume after a
// simulated mid-sweep kill, crash-truncated tails, corruption
// rejection and scenario-space validation.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/report.hh"
#include "sim/stat_registry.hh"
#include "sweep/journal.hh"
#include "sweep/sweep.hh"

namespace hermes
{
namespace
{

SimBudget
tinyBudget()
{
    SimBudget b;
    b.warmupInstrs = 1'000;
    b.simInstrs = 4'000;
    return b;
}

/** A (2 configs x 3 traces) grid, small enough for unit tests. */
std::vector<sweep::GridPoint>
smallGrid()
{
    const SimBudget b = tinyBudget();
    SystemConfig nopf = SystemConfig::baseline(1);
    SystemConfig pythia = nopf;
    pythia.prefetcher = PrefetcherKind::Pythia;

    const auto traces = quickSuite();
    std::vector<sweep::GridPoint> grid;
    for (int c = 0; c < 2; ++c) {
        const SystemConfig &cfg = c == 0 ? nopf : pythia;
        for (int t = 0; t < 3; ++t)
            grid.push_back({"cfg" + std::to_string(c) + "." +
                                traces[t].name(),
                            cfg,
                            {traces[t]},
                            b});
    }
    return grid;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "hermes_journal_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
spit(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
}

TEST(ShardSpec, ParseValid)
{
    const sweep::ShardSpec s = sweep::parseShardSpec("2/4");
    EXPECT_EQ(s.index, 2);
    EXPECT_EQ(s.count, 4);
    EXPECT_EQ(sweep::parseShardSpec("1/1").count, 1);
}

TEST(ShardSpec, ParseRejectsMalformed)
{
    EXPECT_THROW(sweep::parseShardSpec("24"), std::invalid_argument);
    EXPECT_THROW(sweep::parseShardSpec("/4"), std::invalid_argument);
    EXPECT_THROW(sweep::parseShardSpec("2/"), std::invalid_argument);
    EXPECT_THROW(sweep::parseShardSpec("0/4"), std::invalid_argument);
    EXPECT_THROW(sweep::parseShardSpec("5/4"), std::invalid_argument);
    EXPECT_THROW(sweep::parseShardSpec("2/0"), std::invalid_argument);
    EXPECT_THROW(sweep::parseShardSpec("a/b"), std::invalid_argument);
    EXPECT_THROW(sweep::parseShardSpec("1/4x"), std::invalid_argument);
}

TEST(ShardSpec, PartitionCoversEveryIndexExactlyOnce)
{
    const int shards = 4;
    for (std::size_t i = 0; i < 23; ++i) {
        int owners = 0;
        for (int s = 1; s <= shards; ++s)
            owners += sweep::SweepEngine::inShard(i, {s, shards}) ? 1
                                                                  : 0;
        EXPECT_EQ(owners, 1) << "index " << i;
    }
    // A 1-way "partition" owns everything.
    EXPECT_TRUE(sweep::SweepEngine::inShard(7, {1, 1}));
}

TEST(Fingerprints, PointFingerprintKeyedOnEveryIngredient)
{
    const auto grid = smallGrid();
    const std::uint64_t base = sweep::pointFingerprint(grid[0]);

    sweep::GridPoint p = grid[0];
    p.label += "x";
    EXPECT_NE(sweep::pointFingerprint(p), base);

    p = grid[0];
    p.config.llcLatency += 1;
    EXPECT_NE(sweep::pointFingerprint(p), base);

    p = grid[0];
    p.budget.simInstrs += 1;
    EXPECT_NE(sweep::pointFingerprint(p), base);

    p = grid[0];
    p.traces = grid[1].traces;
    EXPECT_NE(sweep::pointFingerprint(p), base);

    EXPECT_EQ(sweep::pointFingerprint(grid[0]), base);
}

TEST(Fingerprints, SpaceFingerprintSeesOrderAndSize)
{
    auto grid = smallGrid();
    const std::uint64_t base = sweep::spaceFingerprint(grid);
    std::swap(grid[0], grid[1]);
    EXPECT_NE(sweep::spaceFingerprint(grid), base);
    grid = smallGrid();
    grid.pop_back();
    EXPECT_NE(sweep::spaceFingerprint(grid), base);
}

TEST(Journal, WriterRoundTripReproducesResultsExactly)
{
    const auto grid = smallGrid();
    const auto direct = sweep::SweepEngine().run(grid);

    const std::string path = tempPath("roundtrip.jsonl");
    {
        sweep::JournalWriter w(path);
        w.beginGrid(grid);
        for (const auto &r : direct)
            w.append(r);
    }

    bool truncated = true;
    const auto segments = sweep::readJournal(path, &truncated);
    EXPECT_FALSE(truncated);
    ASSERT_EQ(segments.size(), 1u);
    sweep::validateSegment(segments[0], grid);
    ASSERT_EQ(segments[0].records.size(), grid.size());

    std::vector<sweep::PointResult> loaded;
    for (const auto &rec : segments[0].records)
        loaded.push_back(rec.result);
    // Deterministic columns, fingerprints AND the non-deterministic
    // host-perf doubles all survive the round trip bit-for-bit.
    EXPECT_EQ(sweep::toCsv(loaded, true), sweep::toCsv(direct, true));
    EXPECT_EQ(sweep::toJson(loaded, true), sweep::toJson(direct, true));
    EXPECT_EQ(sweep::sweepFingerprint(loaded),
              sweep::sweepFingerprint(direct));
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].wallSeconds, direct[i].wallSeconds);
        EXPECT_EQ(loaded[i].stats.hostPerf.seconds,
                  direct[i].stats.hostPerf.seconds);
    }
    std::remove(path.c_str());
}

TEST(Journal, ShardUnionByteIdenticalToUnshardedRun)
{
    const auto grid = smallGrid();
    const auto direct = sweep::SweepEngine().run(grid);

    const int shards = 3;
    std::vector<std::string> paths;
    for (int s = 1; s <= shards; ++s) {
        const std::string path =
            tempPath("shard" + std::to_string(s) + ".jsonl");
        paths.push_back(path);
        sweep::JournalWriter w(path);
        sweep::OrchestrateOptions oopts;
        oopts.shard = {s, shards};
        oopts.journal = &w;
        const auto run = sweep::runJournaled({}, grid, oopts);
        EXPECT_FALSE(run.complete());
        EXPECT_EQ(run.simulated + run.otherShard, grid.size());
    }

    std::vector<std::vector<sweep::JournalSegment>> files;
    for (const auto &p : paths)
        files.push_back(sweep::readJournal(p));
    const auto merged = sweep::mergeSegments(files);
    ASSERT_EQ(merged.size(), 1u);
    sweep::validateSegment(merged[0], grid);
    ASSERT_EQ(merged[0].records.size(), grid.size());

    std::vector<sweep::PointResult> unioned;
    for (const auto &rec : merged[0].records)
        unioned.push_back(rec.result);
    EXPECT_EQ(sweep::toCsv(unioned), sweep::toCsv(direct));
    EXPECT_EQ(sweep::toJson(unioned), sweep::toJson(direct));
    EXPECT_EQ(sweep::sweepFingerprint(unioned),
              sweep::sweepFingerprint(direct));
    for (const auto &p : paths)
        std::remove(p.c_str());
}

TEST(Journal, ResumeSimulatesOnlyMissingPoints)
{
    const auto grid = smallGrid();
    const auto direct = sweep::SweepEngine().run(grid);

    // Simulate a mid-sweep kill: only shard 1/2's points got recorded.
    const std::string path = tempPath("resume.jsonl");
    std::size_t recorded = 0;
    {
        sweep::JournalWriter w(path);
        sweep::OrchestrateOptions oopts;
        oopts.shard = {1, 2};
        oopts.journal = &w;
        recorded = sweep::runJournaled({}, grid, oopts).simulated;
    }
    ASSERT_GT(recorded, 0u);
    ASSERT_LT(recorded, grid.size());

    auto segments = sweep::readJournal(path);
    ASSERT_EQ(segments.size(), 1u);
    sweep::validateSegment(segments[0], grid);

    sweep::OrchestrateOptions oopts;
    oopts.resume = &segments[0];
    const auto run = sweep::runJournaled({}, grid, oopts);
    EXPECT_TRUE(run.complete());
    EXPECT_EQ(run.resumed, recorded);
    // The contract under test: resuming re-simulates ONLY the points
    // the journal is missing.
    EXPECT_EQ(run.simulated, grid.size() - recorded);
    EXPECT_EQ(sweep::toCsv(run.results), sweep::toCsv(direct));
    EXPECT_EQ(sweep::sweepFingerprint(run.results),
              sweep::sweepFingerprint(direct));
    std::remove(path.c_str());
}

TEST(Journal, TruncatedFinalLineIsTolerated)
{
    const auto grid = smallGrid();
    const auto direct = sweep::SweepEngine().run(grid);
    const std::string path = tempPath("trunc.jsonl");
    {
        sweep::JournalWriter w(path);
        w.beginGrid(grid);
        for (const auto &r : direct)
            w.append(r);
    }
    const std::string text = slurp(path);
    spit(path, text.substr(0, text.size() - 30)); // tear the last line

    bool truncated = false;
    const auto segments = sweep::readJournal(path, &truncated);
    EXPECT_TRUE(truncated);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].records.size(), grid.size() - 1);
    sweep::validateSegment(segments[0], grid);
    std::remove(path.c_str());
}

TEST(Journal, GarbledEarlierLineIsRejectedWithLineNumber)
{
    const auto grid = smallGrid();
    const auto direct = sweep::SweepEngine().run(grid);
    const std::string path = tempPath("garbled.jsonl");
    {
        sweep::JournalWriter w(path);
        w.beginGrid(grid);
        for (const auto &r : direct)
            w.append(r);
    }
    // Flip a stats digit on line 2 (the first record): the recorded
    // fingerprint no longer matches, which must be a hard error.
    std::string text = slurp(path);
    const std::size_t cycles = text.find("\"cycles\":");
    ASSERT_NE(cycles, std::string::npos);
    const std::size_t digit = cycles + std::strlen("\"cycles\":");
    text[digit] = text[digit] == '1' ? '2' : '1';
    spit(path, text);

    try {
        sweep::readJournal(path);
        FAIL() << "garbled record must be rejected";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("fingerprint mismatch"), std::string::npos)
            << what;
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    }
    std::remove(path.c_str());
}

TEST(Journal, RecordedForDifferentSpaceIsRejected)
{
    const auto grid = smallGrid();
    const std::string path = tempPath("space.jsonl");
    {
        sweep::JournalWriter w(path);
        w.beginGrid(grid);
        w.append(sweep::SweepEngine().run(grid)[0]);
    }
    auto other = smallGrid();
    other[0].budget.simInstrs += 1; // same size, different scenario
    const auto segments = sweep::readJournal(path);
    try {
        sweep::validateSegment(segments[0], other);
        FAIL() << "space mismatch must be rejected";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "different scenario space"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(Journal, OldFormatVersionIsRejectedWithAClearError)
{
    // A version-1 journal (pre-registry stats layout) must fail as an
    // incompatible version, not as a misleading decode error.
    const std::string path = tempPath("oldversion.jsonl");
    spit(path,
         "{\"hermes_journal\":1,\"space\":\"0000000000000001\","
         "\"points\":2}\n"
         "{\"i\":0}\n");
    try {
        sweep::readJournal(path);
        FAIL() << "old journal version must be rejected";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "unsupported journal version 1"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(Journal, EmptyOrHeaderlessFilesAreRejected)
{
    const std::string path = tempPath("empty.jsonl");
    spit(path, "");
    EXPECT_THROW(sweep::readJournal(path), std::runtime_error);
    spit(path, "{\"i\":0}\n{\"i\":1}\n");
    EXPECT_THROW(sweep::readJournal(path), std::runtime_error);
    std::remove(path.c_str());
    EXPECT_THROW(sweep::readJournal(path), std::runtime_error);
}

TEST(Journal, MergeRejectsConflictingRecords)
{
    sweep::JournalSegment a;
    a.spaceFp = 42;
    a.points = 2;
    sweep::JournalRecord rec;
    rec.index = 0;
    rec.result.stats.simCycles = 100;
    a.records.push_back(rec);

    sweep::JournalSegment b = a;
    b.records[0].result.stats.simCycles = 200;

    EXPECT_THROW(sweep::mergeSegments({{a}, {b}}), std::runtime_error);
    // Identical duplicates dedup fine.
    const auto merged = sweep::mergeSegments({{a}, {a}});
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].records.size(), 1u);
}

TEST(Journal, MergeRejectsDifferentSpaces)
{
    sweep::JournalSegment a;
    a.spaceFp = 1;
    a.points = 2;
    sweep::JournalSegment b;
    b.spaceFp = 2;
    b.points = 2;
    EXPECT_THROW(sweep::mergeSegments({{a}, {b}}), std::runtime_error);
}

TEST(Journal, MultiSegmentJournalsRoundTrip)
{
    // A fig driver journals one segment per runGrid() call; both must
    // come back, in order, each validating against its own grid.
    const auto grid = smallGrid();
    std::vector<sweep::GridPoint> grid2(grid.begin(), grid.begin() + 2);
    const std::string path = tempPath("segments.jsonl");
    {
        sweep::JournalWriter w(path);
        w.beginGrid(grid);
        w.append(sweep::SweepEngine().run(grid)[3]);
        w.beginGrid(grid2);
        w.append(sweep::SweepEngine().run(grid2)[1]);
    }
    const auto segments = sweep::readJournal(path);
    ASSERT_EQ(segments.size(), 2u);
    sweep::validateSegment(segments[0], grid);
    sweep::validateSegment(segments[1], grid2);
    EXPECT_EQ(segments[0].records.size(), 1u);
    EXPECT_EQ(segments[0].records[0].index, 3u);
    EXPECT_EQ(segments[1].records.size(), 1u);
    EXPECT_EQ(segments[1].records[0].index, 1u);

    // journalText() round trip preserves everything.
    spit(path, sweep::journalText(segments));
    const auto again = sweep::readJournal(path);
    ASSERT_EQ(again.size(), 2u);
    EXPECT_EQ(sweep::journalText(again), sweep::journalText(segments));
    std::remove(path.c_str());
}

TEST(Journal, CodecRoundTripsEveryRegisteredCounter)
{
    // Distinct values in every raw counter, written through the
    // registry setters: RunStats -> journal record -> RunStats must be
    // an identity for every registered key (a swapped or dropped field
    // in the codec plan cannot hide behind equal values).
    const auto &reg = StatRegistry::instance();
    RunStats s;
    std::uint64_t v = 1;
    for (const StatCodecItem &item : reg.codecPlan()) {
        switch (item.kind) {
        case StatCodecItem::Kind::Scalar:
            item.defs[0]->setU64(s, v++);
            break;
        case StatCodecItem::Kind::Group:
            item.resize(s, 3);
            for (std::size_t i = 0; i < 3; ++i)
                for (const StatDef *d : item.defs)
                    d->setAtU64(s, i, v++);
            break;
        case StatCodecItem::Kind::Section:
            for (const StatDef *d : item.defs)
                d->setU64(s, v++);
            break;
        }
    }
    s.hostPerf.seconds = 0.1259765625; // exact in binary
    s.hostPerf.instrs = 777;

    sweep::JournalSegment seg;
    seg.spaceFp = 42;
    seg.points = 1;
    sweep::JournalRecord rec;
    rec.index = 0;
    rec.pointFp = 7;
    rec.result.index = 0;
    rec.result.label = "synthetic";
    rec.result.stats = s;
    rec.result.wallSeconds = 0.5;
    seg.records.push_back(rec);

    const std::string path = tempPath("codec.jsonl");
    spit(path, sweep::journalText({seg}));
    const auto loaded = sweep::readJournal(path);
    ASSERT_EQ(loaded.size(), 1u);
    ASSERT_EQ(loaded[0].records.size(), 1u);
    const RunStats &d = loaded[0].records[0].result.stats;

    for (const StatCodecItem &item : reg.codecPlan()) {
        if (item.kind == StatCodecItem::Kind::Group) {
            ASSERT_EQ(item.count(d), 3u) << item.name;
            for (std::size_t i = 0; i < 3; ++i)
                for (const StatDef *def : item.defs)
                    EXPECT_EQ(def->getAtU64(d, i),
                              def->getAtU64(s, i))
                        << def->key << "[" << i << "]";
            continue;
        }
        for (const StatDef *def : item.defs)
            EXPECT_EQ(def->getU64(d), def->getU64(s)) << def->key;
    }
    EXPECT_EQ(d.hostPerf.seconds, s.hostPerf.seconds);
    EXPECT_EQ(d.hostPerf.instrs, s.hostPerf.instrs);
    EXPECT_EQ(loaded[0].records[0].result.wallSeconds, 0.5);
    EXPECT_EQ(statsFingerprint(d), statsFingerprint(s));
    std::remove(path.c_str());
}

TEST(ShardSpec, InShardThrowsOnDegenerateSpecs)
{
    // A zero-count spec used to hit "% 0"; any out-of-range spec must
    // be a loud error, never a silent mis-partition.
    EXPECT_THROW(sweep::SweepEngine::inShard(3, {0, 0}),
                 std::invalid_argument);
    EXPECT_THROW(sweep::SweepEngine::inShard(3, {0, 4}),
                 std::invalid_argument);
    EXPECT_THROW(sweep::SweepEngine::inShard(3, {5, 4}),
                 std::invalid_argument);
    EXPECT_THROW(sweep::SweepEngine::inShard(3, {2, 0}),
                 std::invalid_argument);
    EXPECT_THROW(sweep::SweepEngine::inShard(3, {-1, 3}),
                 std::invalid_argument);
    EXPECT_TRUE(sweep::SweepEngine::inShard(0, {1, 1}));
}

TEST(ShardSpec, ParseRejectsCountBeyondIntRange)
{
    EXPECT_THROW(sweep::parseShardSpec("1/99999999999"),
                 std::invalid_argument);
}

TEST(Journal, HeaderIsOnDiskBeforeAnyAppend)
{
    // Regression: beginGrid used to fflush without fsync, so a crash
    // right after it could leave appends pointing at a hole. The
    // observable contract is that the header line is complete and
    // parseable the moment beginGrid returns, with the writer still
    // open and no records appended.
    const auto grid = smallGrid();
    const std::string path = tempPath("headerfirst.jsonl");
    sweep::JournalWriter w(path);
    w.beginGrid(grid);

    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
    const auto segments = sweep::readJournal(path);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].spaceFp, sweep::spaceFingerprint(grid));
    EXPECT_EQ(segments[0].points, grid.size());
    EXPECT_TRUE(segments[0].records.empty());
    std::remove(path.c_str());
}

TEST(Journal, TrailingHeaderOnlySegmentIsAToleratedTail)
{
    // A crash between beginGrid and the first append leaves a bare
    // header as the final segment. That is a truncated tail — drop it
    // and keep every earlier record — not a hard error.
    const auto grid = smallGrid();
    std::vector<sweep::GridPoint> grid2(grid.begin(), grid.begin() + 2);
    const std::string path = tempPath("bareheader.jsonl");
    {
        sweep::JournalWriter w(path);
        w.beginGrid(grid);
        w.append(sweep::SweepEngine().run(grid)[3]);
        w.beginGrid(grid2); // killed here: no appends follow
    }
    bool truncated = false;
    const auto segments = sweep::readJournal(path, &truncated);
    EXPECT_TRUE(truncated);
    ASSERT_EQ(segments.size(), 1u);
    sweep::validateSegment(segments[0], grid);
    ASSERT_EQ(segments[0].records.size(), 1u);
    EXPECT_EQ(segments[0].records[0].index, 3u);
    std::remove(path.c_str());
}

TEST(Journal, SingleBareHeaderJournalLoadsAsEmptySegment)
{
    // A journal holding exactly one header and nothing else is a valid
    // "began a grid, recorded nothing yet" state (e.g. a shard owning
    // none of a tiny grid): it must load, not throw and not vanish.
    const auto grid = smallGrid();
    const std::string path = tempPath("singleheader.jsonl");
    {
        sweep::JournalWriter w(path);
        w.beginGrid(grid);
    }
    bool truncated = false;
    const auto segments = sweep::readJournal(path, &truncated);
    EXPECT_FALSE(truncated);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_TRUE(segments[0].records.empty());
    sweep::validateSegment(segments[0], grid);
    std::remove(path.c_str());
}

TEST(Journal, RecordCodecExposedAndVerifying)
{
    const auto grid = smallGrid();
    const auto r = sweep::SweepEngine().run(grid)[0];
    sweep::JournalRecord rec;
    rec.index = 0;
    rec.pointFp = sweep::pointFingerprint(grid[0]);
    rec.result = r;
    const std::string line = sweep::encodeJournalRecord(rec);
    const sweep::JournalRecord back = sweep::decodeJournalRecord(line);
    EXPECT_EQ(back.index, rec.index);
    EXPECT_EQ(back.pointFp, rec.pointFp);
    EXPECT_EQ(statsFingerprint(back.result.stats),
              statsFingerprint(r.stats));

    // decode re-derives the stats fingerprint; a flipped digit fails.
    std::string bad = line;
    const std::size_t cycles = bad.find("\"cycles\":");
    ASSERT_NE(cycles, std::string::npos);
    const std::size_t digit = cycles + std::strlen("\"cycles\":");
    bad[digit] = bad[digit] == '1' ? '2' : '1';
    EXPECT_THROW(sweep::decodeJournalRecord(bad), std::runtime_error);
}

TEST(Journal, FailedPointsAreNeverRecorded)
{
    sweep::PointResult bad;
    bad.index = 0;
    bad.label = "bad";
    bad.ok = false;
    const auto grid = smallGrid();
    const std::string path = tempPath("failed.jsonl");
    {
        sweep::JournalWriter w(path);
        w.beginGrid(grid);
        w.append(bad);
    }
    const auto segments = sweep::readJournal(path);
    EXPECT_TRUE(segments[0].records.empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace hermes
