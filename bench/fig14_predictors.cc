/**
 * @file
 * Fig. 14: Hermes on top of Pythia with every registered off-chip
 * predictor — the paper's three real ones (HMP, TTP, POPET), the
 * oracle (Ideal Hermes), and any contender landed through the model
 * registry since (hermes_run --list-models). A predictor added in its
 * own translation unit appears in this figure with zero edits here.
 *
 * Paper shape (geomean over no-pf): Pythia 1.203, +Hermes-HMP 1.211,
 * +Hermes-TTP 1.220, +Hermes-POPET 1.257, +Ideal 1.286 — POPET
 * captures ~90% of the oracle's benefit.
 */
// figmap: Fig. 14 | every registered predictor on the Pythia baseline

#include <cstdio>

#include "harness/harness.hh"
#include "sim/model_registry.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);
    const auto nopf = runSuite(cfgNoPrefetch(), b);
    const auto pyth = runSuite(cfgBaseline(), b);

    Table t({"config", "geomean speedup vs no-pf", "vs Pythia"});
    const double base = geomeanSpeedup(pyth, nopf);
    t.addRow({"Pythia (baseline)", Table::fmt(base), "-"});
    double popet_gain = 0, ideal_gain = 0;
    for (const std::string &name :
         ModelRegistry::instance().names(ModelKind::Predictor)) {
        if (name == "none")
            continue;
        const auto rs = runSuite(withHermes(cfgBaseline(), name, 6), b);
        const double s = geomeanSpeedup(rs, nopf);
        t.addRow({"Pythia+Hermes-" + name, Table::fmt(s),
                  Table::pct(s / base - 1.0)});
        if (name == "popet")
            popet_gain = s / base - 1.0;
        if (name == "ideal")
            ideal_gain = s / base - 1.0;
    }
    t.print("Fig. 14: effect of the off-chip prediction mechanism");
    if (ideal_gain > 0)
        std::printf("\nPOPET captures %.0f%% of the Ideal Hermes benefit "
                    "(paper: ~90%%)\n",
                    100.0 * popet_gain / ideal_gain);
    return 0;
}
