/**
 * @file
 * Fig. 14: Hermes on top of Pythia with the three real off-chip
 * predictors (HMP, TTP, POPET) and the oracle (Ideal Hermes).
 *
 * Paper shape (geomean over no-pf): Pythia 1.203, +Hermes-HMP 1.211,
 * +Hermes-TTP 1.220, +Hermes-POPET 1.257, +Ideal 1.286 — POPET
 * captures ~90% of the oracle's benefit.
 */

#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);
    const auto nopf = runSuite(cfgNoPrefetch(), b);
    const auto pyth = runSuite(cfgBaseline(), b);

    Table t({"config", "geomean speedup vs no-pf", "vs Pythia"});
    const double base = geomeanSpeedup(pyth, nopf);
    t.addRow({"Pythia (baseline)", Table::fmt(base), "-"});
    double popet_gain = 0, ideal_gain = 0;
    for (auto pk : {PredictorKind::Hmp, PredictorKind::Ttp,
                    PredictorKind::Popet, PredictorKind::Ideal}) {
        const auto rs = runSuite(withHermes(cfgBaseline(), pk, 6), b);
        const double s = geomeanSpeedup(rs, nopf);
        t.addRow({std::string("Pythia+Hermes-") + predictorKindName(pk),
                  Table::fmt(s), Table::pct(s / base - 1.0)});
        if (pk == PredictorKind::Popet)
            popet_gain = s / base - 1.0;
        if (pk == PredictorKind::Ideal)
            ideal_gain = s / base - 1.0;
    }
    t.print("Fig. 14: effect of the off-chip prediction mechanism");
    if (ideal_gain > 0)
        std::printf("\nPOPET captures %.0f%% of the Ideal Hermes benefit "
                    "(paper: ~90%%)\n",
                    100.0 * popet_gain / ideal_gain);
    return 0;
}
