/**
 * @file
 * Fig. 12: single-core speedups of Hermes-P, Hermes-O, Pythia,
 * Pythia + Hermes-P and Pythia + Hermes-O over the no-prefetching
 * system, per workload category.
 *
 * Paper shape (geomean): Hermes-P 1.09, Hermes-O 1.12, Pythia 1.20,
 * Pythia+Hermes-P 1.25, Pythia+Hermes-O 1.26; Hermes alone captures
 * roughly half of Pythia's gain at 1/5 the storage.
 */
// figmap: Fig. 12 | Hermes-P/O, Pythia, Pythia+Hermes-P/O per category

#include <cstdio>

#include "harness/harness.hh"
#include "sim/param_registry.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);
    const auto nopf = runSuite(cfgNoPrefetch(), b);

    // The evaluated mechanisms, expressed as registry override strings
    // over the no-prefetching baseline.
    const std::vector<std::string> hermes_p = {
        "predictor=popet", "hermes.enabled=true",
        "hermes.issue_latency=18"};
    const std::vector<std::string> hermes_o = {
        "predictor=popet", "hermes.enabled=true",
        "hermes.issue_latency=6"};
    struct Cfg
    {
        const char *name;
        SystemConfig cfg;
    };
    const Cfg cfgs[] = {
        {"Hermes-P", configWith(cfgNoPrefetch(), hermes_p)},
        {"Hermes-O", configWith(cfgNoPrefetch(), hermes_o)},
        {"Pythia (baseline)",
         configWith(cfgNoPrefetch(), {"prefetcher=pythia"})},
        {"Pythia+Hermes-P", configWith(cfgBaseline(), hermes_p)},
        {"Pythia+Hermes-O", configWith(cfgBaseline(), hermes_o)},
    };

    Table t({"config", "SPEC06", "SPEC17", "PARSEC", "Ligra", "CVP",
             "GEOMEAN"});
    double pythia_all = 1.0, hermes_o_all = 1.0;
    for (const auto &c : cfgs) {
        const auto rs = runSuite(c.cfg, b);
        const auto by_cat = speedupByCategory(rs, nopf);
        auto cell = [&](const char *k) {
            auto it = by_cat.find(k);
            return it == by_cat.end() ? std::string("-")
                                      : Table::fmt(it->second);
        };
        t.addRow({c.name, cell("SPEC06"), cell("SPEC17"), cell("PARSEC"),
                  cell("Ligra"), cell("CVP"), cell("ALL")});
        if (std::string(c.name) == "Pythia (baseline)")
            pythia_all = by_cat.at("ALL");
        if (std::string(c.name) == "Pythia+Hermes-O")
            hermes_o_all = by_cat.at("ALL");
    }
    t.print("Fig. 12: single-core speedup over the no-prefetching system");
    std::printf("\nPythia+Hermes-O over Pythia: %+.1f%% (paper: +5.4%%)\n",
                100.0 * (hermes_o_all / pythia_all - 1.0));
    return 0;
}
