/**
 * @file
 * Fig. 17 (activation threshold): POPET accuracy/coverage and Hermes
 * speedup as tau_act sweeps from -38 to 2.
 *
 * Paper shape: accuracy rises and coverage falls with tau_act; the
 * speedup peaks slightly below the chosen operating point (-18), which
 * balances accuracy (bandwidth) against coverage.
 */
// figmap: Fig. 17e | popet.act_threshold -38..2

#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(100'000, 250'000);
    const auto nopf = runSuite(cfgNoPrefetch(), b);

    Table t({"tau_act", "accuracy", "coverage", "speedup vs no-pf"});
    for (int tau = -38; tau <= 2; tau += 4) {
        SystemConfig cfg = withHermes(cfgBaseline(), PredictorKind::Popet,
                                      6);
        cfg.popet.activationThreshold = tau;
        const auto rs = runSuite(cfg, b);
        PredictorStats all;
        for (const auto &r : rs) {
            const PredictorStats p = r.stats.predTotal();
            all.truePositives += p.truePositives;
            all.falsePositives += p.falsePositives;
            all.falseNegatives += p.falseNegatives;
            all.trueNegatives += p.trueNegatives;
        }
        t.addRow({std::to_string(tau), Table::pct(all.accuracy()),
                  Table::pct(all.coverage()),
                  Table::fmt(geomeanSpeedup(rs, nopf))});
    }
    t.print("Fig. 17e: activation threshold sweep");
    return 0;
}
