/**
 * @file
 * Fig. 21 (Appendix B.3): POPET accuracy/coverage when Hermes runs with
 * every registered prefetcher and with no prefetcher at all — the
 * paper's five baselines plus any contender landed through the model
 * registry since (hermes_run --list-models). A prefetcher added in its
 * own translation unit appears in this figure with zero edits here.
 *
 * Paper shape: accuracy/coverage vary with the prefetcher (73-80% /
 * 66-85%); without any prefetcher POPET is clearly best (88.9% / 93.6%)
 * because prefetch traffic perturbs off-chip behaviour.
 */
// figmap: Fig. 21 | POPET accuracy/coverage on every registered prefetcher

#include <cstdio>
#include <string>
#include <vector>

#include "harness/harness.hh"
#include "sim/model_registry.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);

    // Every registered prefetcher, "none" last: the paper's panels put
    // the prefetcher-free system at the end as the reference point.
    std::vector<std::string> pfs;
    for (const std::string &name :
         ModelRegistry::instance().names(ModelKind::Prefetcher))
        if (name != "none")
            pfs.push_back(name);
    pfs.push_back("none");

    Table t({"config", "accuracy", "coverage"});
    for (const std::string &pf : pfs) {
        const std::string label =
            pf == "none" ? "Hermes alone" : pf + "+Hermes";
        const auto rs = runSuite(
            withHermes(cfgPrefetcher(pf), "popet", 6), b);
        PredictorStats all;
        for (const auto &r : rs) {
            const PredictorStats p = r.stats.predTotal();
            all.truePositives += p.truePositives;
            all.falsePositives += p.falsePositives;
            all.falseNegatives += p.falseNegatives;
            all.trueNegatives += p.trueNegatives;
        }
        t.addRow({label, Table::pct(all.accuracy()),
                  Table::pct(all.coverage())});
    }
    t.print("Fig. 21: POPET accuracy/coverage vs baseline prefetcher");
    std::printf("\npaper: highest accuracy/coverage with no prefetcher "
                "(88.9%%/93.6%%)\n");
    return 0;
}
