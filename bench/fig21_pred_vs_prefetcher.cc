/**
 * @file
 * Fig. 21 (Appendix B.3): POPET accuracy/coverage when Hermes runs with
 * each baseline prefetcher and with no prefetcher at all.
 *
 * Paper shape: accuracy/coverage vary with the prefetcher (73-80% /
 * 66-85%); without any prefetcher POPET is clearly best (88.9% / 93.6%)
 * because prefetch traffic perturbs off-chip behaviour.
 */

#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);

    struct Named
    {
        const char *name;
        PrefetcherKind pf;
    };
    const Named rows[] = {
        {"Pythia+Hermes", PrefetcherKind::Pythia},
        {"Bingo+Hermes", PrefetcherKind::Bingo},
        {"SPP+Hermes", PrefetcherKind::Spp},
        {"MLOP+Hermes", PrefetcherKind::Mlop},
        {"SMS+Hermes", PrefetcherKind::Sms},
        {"Hermes alone", PrefetcherKind::None},
    };

    Table t({"config", "accuracy", "coverage"});
    for (const auto &row : rows) {
        const auto rs = runSuite(
            withHermes(cfgPrefetcher(row.pf), PredictorKind::Popet, 6), b);
        PredictorStats all;
        for (const auto &r : rs) {
            const PredictorStats p = r.stats.predTotal();
            all.truePositives += p.truePositives;
            all.falsePositives += p.falsePositives;
            all.falseNegatives += p.falseNegatives;
            all.trueNegatives += p.trueNegatives;
        }
        t.addRow({row.name, Table::pct(all.accuracy()),
                  Table::pct(all.coverage())});
    }
    t.print("Fig. 21: POPET accuracy/coverage vs baseline prefetcher");
    std::printf("\npaper: highest accuracy/coverage with no prefetcher "
                "(88.9%%/93.6%%)\n");
    return 0;
}
