/**
 * @file
 * Fig. 9: off-chip prediction accuracy and coverage of POPET vs HMP vs
 * TTP on the Pythia baseline (predictor-only mode: predictions are
 * observed and trained but no Hermes requests are issued).
 *
 * Paper shape: POPET 77.1% accuracy / 74.3% coverage; HMP 47% / 22.3%;
 * TTP 16.6% / 94.8% (highest coverage, lowest accuracy).
 */
// figmap: Fig. 9 | predictor-only accuracy/coverage: POPET vs HMP vs TTP

#include <cstdio>

#include "harness/harness.hh"
#include "sim/stat_registry.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);

    Table t({"predictor", "category", "accuracy", "coverage"});
    for (auto pk : {PredictorKind::Hmp, PredictorKind::Ttp,
                    PredictorKind::Popet}) {
        const auto rs =
            runSuite(withPredictorOnly(cfgBaseline(), pk), b);
        std::map<std::string, PredictorStats> agg;
        PredictorStats all;
        for (const auto &r : rs) {
            // Confusion-matrix counters through their registry keys
            // (the same pred.* columns --stats exposes in the dumps).
            auto &a = agg[r.category];
            for (auto [key, field] :
                 {std::pair{"pred.tp", &PredictorStats::truePositives},
                  {"pred.fp", &PredictorStats::falsePositives},
                  {"pred.fn", &PredictorStats::falseNegatives},
                  {"pred.tn", &PredictorStats::trueNegatives}}) {
                const std::uint64_t v = statU64(r.stats, key);
                a.*field += v;
                all.*field += v;
            }
        }
        for (const auto &[cat, p] : agg)
            t.addRow({predictorKindName(pk), cat,
                      Table::pct(p.accuracy()), Table::pct(p.coverage())});
        t.addRow({predictorKindName(pk), "AVG", Table::pct(all.accuracy()),
                  Table::pct(all.coverage())});
    }
    t.print("Fig. 9: accuracy and coverage of HMP / TTP / POPET");
    std::printf("\npaper: POPET 77.1/74.3, HMP 47.0/22.3, TTP 16.6/94.8\n");
    return 0;
}
