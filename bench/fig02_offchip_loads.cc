/**
 * @file
 * Fig. 2: distribution of ROB-blocking vs non-blocking off-chip loads
 * (normalised to the no-prefetching system) and LLC MPKI, without and
 * with the Pythia prefetcher.
 *
 * Paper shape: Pythia removes roughly half of the off-chip loads; a
 * large majority (~71%) of the remaining off-chip loads block
 * retirement.
 */
// figmap: Fig. 2 | blocking vs non-blocking off-chip loads, no-pf vs Pythia

#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);
    const auto nopf = runSuite(cfgNoPrefetch(), b);
    const auto pyth = runSuite(cfgBaseline(), b);

    Table t({"category", "system", "offchip/nopf", "blocking%",
             "nonblocking%", "LLC MPKI"});
    std::map<std::string, std::array<double, 6>> agg; // sums per cat
    for (std::size_t i = 0; i < nopf.size(); ++i) {
        for (const auto *rs : {&nopf[i], &pyth[i]}) {
            const bool is_pf = rs == &pyth[i];
            auto &a = agg[nopf[i].category + (is_pf ? "|pythia"
                                                    : "|no-pf")];
            const auto &c = rs->stats.core[0];
            a[0] += static_cast<double>(c.loadsOffChip);
            a[1] += static_cast<double>(c.offChipBlocking);
            a[2] += static_cast<double>(c.offChipNonBlocking);
            a[3] += rs->stats.llcMpki();
            a[4] += static_cast<double>(nopf[i].stats.core[0].loadsOffChip);
            a[5] += 1;
        }
    }
    for (const auto &[key, a] : agg) {
        const auto bar = key.find('|');
        const double total = a[1] + a[2];
        t.addRow({key.substr(0, bar), key.substr(bar + 1),
                  Table::fmt(a[4] > 0 ? a[0] / a[4] : 0, 3),
                  Table::pct(total > 0 ? a[1] / total : 0),
                  Table::pct(total > 0 ? a[2] / total : 0),
                  Table::fmt(a[3] / a[5], 2)});
    }
    t.print("Fig. 2: off-chip loads (blocking vs non-blocking) and MPKI");

    // Headline aggregates.
    double off_nopf = 0, off_pyth = 0, blk = 0, tot = 0;
    for (std::size_t i = 0; i < nopf.size(); ++i) {
        off_nopf += static_cast<double>(nopf[i].stats.core[0].loadsOffChip);
        off_pyth += static_cast<double>(pyth[i].stats.core[0].loadsOffChip);
        blk += static_cast<double>(pyth[i].stats.core[0].offChipBlocking);
        tot += static_cast<double>(pyth[i].stats.core[0].loadsOffChip);
    }
    std::printf("\nPythia leaves %.1f%% of the no-prefetching system's "
                "off-chip loads uncovered;\n%.1f%% of the remaining "
                "off-chip loads block retirement (paper: ~50%%, 71.4%%).\n",
                100.0 * off_pyth / off_nopf, 100.0 * blk / tot);
    return 0;
}
