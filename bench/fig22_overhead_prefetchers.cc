/**
 * @file
 * Fig. 22 (Appendix B.4): main-memory request overhead of each
 * prefetcher alone and with Hermes added, vs the no-prefetching system.
 *
 * Paper shape: adding Hermes costs only 5.8-15.6% extra requests on
 * top of each prefetcher.
 */
// figmap: Fig. 22 | main-memory request overhead of prefetchers +/- Hermes

#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);

    auto reads = [](const std::vector<TraceResult> &rs) {
        double total = 0;
        for (const auto &r : rs)
            total += static_cast<double>(r.stats.dram.totalReads());
        return total;
    };
    const double base_reads = reads(runSuite(cfgNoPrefetch(), b));

    Table t({"prefetcher", "pf vs no-pf", "pf+Hermes vs no-pf",
             "Hermes adds"});
    for (auto pf : {PrefetcherKind::Pythia, PrefetcherKind::Bingo,
                    PrefetcherKind::Spp, PrefetcherKind::Mlop,
                    PrefetcherKind::Sms}) {
        const double r0 = reads(runSuite(cfgPrefetcher(pf), b));
        const double r1 = reads(runSuite(
            withHermes(cfgPrefetcher(pf), PredictorKind::Popet, 6), b));
        t.addRow({prefetcherKindName(pf),
                  Table::pct(r0 / base_reads - 1.0),
                  Table::pct(r1 / base_reads - 1.0),
                  Table::pct((r1 - r0) / r0)});
    }
    t.print("Fig. 22: main-memory request overhead per prefetcher");
    return 0;
}
