/**
 * @file
 * Fig. 10: POPET accuracy/coverage with each program feature used
 * individually and with features stacked incrementally.
 *
 * Paper shape: individual features range widely (53-71% accuracy,
 * 14-48% coverage); the stacked five-feature POPET beats every
 * individual feature on both metrics.
 */
// figmap: Fig. 10 | popet.feature_mask: individual and stacked features

#include <cstdio>
#include <string>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

namespace
{

PredictorStats
runMask(unsigned mask, const SimBudget &b)
{
    SystemConfig cfg = withPredictorOnly(cfgBaseline(),
                                         PredictorKind::Popet);
    cfg.popet.featureMask = mask;
    PredictorStats all;
    for (const auto &r : runSuite(cfg, b)) {
        const PredictorStats p = r.stats.predTotal();
        all.truePositives += p.truePositives;
        all.falsePositives += p.falsePositives;
        all.falseNegatives += p.falseNegatives;
        all.trueNegatives += p.trueNegatives;
    }
    return all;
}

} // namespace

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(100'000, 250'000);
    static const char *feature_names[] = {
        "PC^cl_offset", "PC^byte_offset", "PC+first_access",
        "cl_offset+first_access", "last4_load_PCs",
    };

    Table t({"features", "accuracy", "coverage"});
    for (unsigned f = 0; f < kPopetFeatureCount; ++f) {
        const PredictorStats p = runMask(1u << f, b);
        t.addRow({feature_names[f], Table::pct(p.accuracy()),
                  Table::pct(p.coverage())});
    }
    // Stacked combinations in the paper's order: 1, 1+2, 1+2+3, ...
    // using (PC^cl_offset, last4, PC^byte, PC+fa, cl_offset+fa).
    const unsigned order[] = {kFeatPcXorLineOffset, kFeatLast4LoadPcs,
                              kFeatPcXorByteOffset, kFeatPcFirstAccess,
                              kFeatOffsetFirstAccess};
    unsigned mask = 0;
    std::string label;
    for (unsigned i = 0; i < 5; ++i) {
        mask |= 1u << order[i];
        label += (i ? "+" : "") + std::to_string(order[i] + 1);
        const PredictorStats p = runMask(mask, b);
        t.addRow({(i + 1 == 5 ? "All (POPET)" : label),
                  Table::pct(p.accuracy()), Table::pct(p.coverage())});
    }
    t.print("Fig. 10: POPET feature ablation (accuracy / coverage)");
    return 0;
}
