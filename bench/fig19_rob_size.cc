/**
 * @file
 * Fig. 19 (Appendix B.1): sensitivity to ROB size (256-1024 entries).
 *
 * Paper shape: Pythia+Hermes beats Pythia at every ROB size (+6.7% at
 * 256 entries, +5.3% at 1024) — bigger windows tolerate more latency,
 * slightly shrinking Hermes's edge.
 */
// figmap: Fig. 19 | core.rob_size 256-1024

#include <cstdio>

#include "harness/harness.hh"
#include "sim/param_registry.hh"
#include "sweep/axis.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(100'000, 250'000);

    const std::vector<std::string> hermes_o = {
        "predictor=popet", "hermes.enabled=true",
        "hermes.issue_latency=6"};
    const std::string axis = "core.rob_size=256,512,768,1024";
    const auto nopf_pts = sweep::expandAxis(cfgNoPrefetch(), axis);
    const auto herm_pts =
        sweep::expandAxis(configWith(cfgNoPrefetch(), hermes_o), axis);
    const auto pyth_pts = sweep::expandAxis(cfgBaseline(), axis);
    const auto both_pts =
        sweep::expandAxis(configWith(cfgBaseline(), hermes_o), axis);

    Table t({"ROB size", "Hermes", "Pythia", "Pythia+Hermes", "gain"});
    for (std::size_t i = 0; i < nopf_pts.size(); ++i) {
        const auto nopf = runSuite(nopf_pts[i].config, b);
        const auto herm = runSuite(herm_pts[i].config, b);
        const auto pyth = runSuite(pyth_pts[i].config, b);
        const auto both = runSuite(both_pts[i].config, b);
        const double sp = geomeanSpeedup(pyth, nopf);
        const double sb = geomeanSpeedup(both, nopf);
        t.addRow({std::to_string(nopf_pts[i].config.core.robSize),
                  Table::fmt(geomeanSpeedup(herm, nopf)), Table::fmt(sp),
                  Table::fmt(sb), Table::pct(sb / sp - 1.0)});
    }
    t.print("Fig. 19: sensitivity to reorder buffer size");
    return 0;
}
