/**
 * @file
 * Fig. 19 (Appendix B.1): sensitivity to ROB size (256-1024 entries).
 *
 * Paper shape: Pythia+Hermes beats Pythia at every ROB size (+6.7% at
 * 256 entries, +5.3% at 1024) — bigger windows tolerate more latency,
 * slightly shrinking Hermes's edge.
 */

#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(100'000, 250'000);

    Table t({"ROB size", "Hermes", "Pythia", "Pythia+Hermes", "gain"});
    for (unsigned rob : {256u, 512u, 768u, 1024u}) {
        auto with_rob = [rob](SystemConfig cfg) {
            cfg.core.robSize = rob;
            return cfg;
        };
        const auto nopf = runSuite(with_rob(cfgNoPrefetch()), b);
        const auto herm = runSuite(
            with_rob(withHermes(cfgNoPrefetch(), PredictorKind::Popet, 6)),
            b);
        const auto pyth = runSuite(with_rob(cfgBaseline()), b);
        const auto both = runSuite(
            with_rob(withHermes(cfgBaseline(), PredictorKind::Popet, 6)),
            b);
        const double sp = geomeanSpeedup(pyth, nopf);
        const double sb = geomeanSpeedup(both, nopf);
        t.addRow({std::to_string(rob),
                  Table::fmt(geomeanSpeedup(herm, nopf)), Table::fmt(sp),
                  Table::fmt(sb), Table::pct(sb / sp - 1.0)});
    }
    t.print("Fig. 19: sensitivity to reorder buffer size");
    return 0;
}
