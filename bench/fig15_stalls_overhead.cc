/**
 * @file
 * Fig. 15: (a) distribution of the per-trace reduction in off-chip
 * stall cycles from adding Hermes to the Pythia baseline (box plot);
 * (b) increase in main-memory requests over the no-prefetching system
 * for Hermes, Pythia and Pythia+Hermes.
 *
 * Paper shape: ~16% average stall-cycle reduction (up to ~52%); Hermes
 * adds ~5.5% memory requests vs Pythia's ~38.5% — about 0.5% extra
 * requests per 1% speedup for Hermes vs ~2% for Pythia.
 */
// figmap: Fig. 15 | stall-cycle reduction and extra main-memory requests

#include <cstdio>

#include "common/stats.hh"
#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);
    const auto nopf = runSuite(cfgNoPrefetch(), b);
    const auto herm =
        runSuite(withHermes(cfgNoPrefetch(), PredictorKind::Popet, 6), b);
    const auto pyth = runSuite(cfgBaseline(), b);
    const auto both =
        runSuite(withHermes(cfgBaseline(), PredictorKind::Popet, 6), b);

    // (a) stall-cycle reduction of Pythia+Hermes vs Pythia.
    std::vector<double> reductions;
    for (std::size_t i = 0; i < pyth.size(); ++i) {
        const double s0 = static_cast<double>(
            pyth[i].stats.core[0].stallCyclesOffChip);
        const double s1 = static_cast<double>(
            both[i].stats.core[0].stallCyclesOffChip);
        if (s0 > 0)
            reductions.push_back(1.0 - s1 / s0);
    }
    const BoxStats box = boxStats(reductions);
    Table a({"metric", "value"});
    a.addRow({"min", Table::pct(box.min)});
    a.addRow({"q1", Table::pct(box.q1)});
    a.addRow({"median", Table::pct(box.median)});
    a.addRow({"q3", Table::pct(box.q3)});
    a.addRow({"max", Table::pct(box.max)});
    a.addRow({"mean", Table::pct(box.mean)});
    a.print("Fig. 15a: reduction in off-chip stall cycles (Hermes on "
            "Pythia)");

    // (b) main-memory request overhead vs the no-prefetching system.
    auto reads = [](const std::vector<TraceResult> &rs) {
        double total = 0;
        for (const auto &r : rs)
            total += static_cast<double>(r.stats.dram.totalReads());
        return total;
    };
    const double base_reads = reads(nopf);
    Table t({"config", "memory request increase vs no-pf"});
    t.addRow({"Hermes-O", Table::pct(reads(herm) / base_reads - 1.0)});
    t.addRow({"Pythia", Table::pct(reads(pyth) / base_reads - 1.0)});
    t.addRow({"Pythia+Hermes-O",
              Table::pct(reads(both) / base_reads - 1.0)});
    t.print("Fig. 15b: main-memory request overhead");
    std::printf("\npaper: Hermes +5.5%%, Pythia +38.5%%\n");
    return 0;
}
