/**
 * @file
 * Fig. 4: potential of Ideal Hermes (oracle off-chip prediction).
 * (a) Ideal Hermes alone, Pythia, Pythia + Ideal Hermes, normalised to
 *     the no-prefetching system.
 * (b) Ideal Hermes on top of Bingo, SPP, MLOP and SMS.
 *
 * Paper shape: Pythia + Ideal Hermes beats Pythia by ~8.3%; Ideal
 * Hermes alone captures a large fraction of Pythia's gain; every
 * prefetcher gains 8-13% from Ideal Hermes.
 */
// figmap: Fig. 4 | Ideal Hermes alone and on top of each prefetcher

#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);
    const auto nopf = runSuite(cfgNoPrefetch(), b);

    Table a({"config", "geomean speedup vs no-pf"});
    const auto ideal_alone =
        runSuite(withHermes(cfgNoPrefetch(), PredictorKind::Ideal), b);
    const auto pyth = runSuite(cfgBaseline(), b);
    const auto pyth_ideal =
        runSuite(withHermes(cfgBaseline(), PredictorKind::Ideal), b);
    a.addRow({"Ideal Hermes", Table::fmt(geomeanSpeedup(ideal_alone,
                                                        nopf))});
    a.addRow({"Pythia (baseline)", Table::fmt(geomeanSpeedup(pyth,
                                                             nopf))});
    a.addRow({"Pythia + Ideal Hermes",
              Table::fmt(geomeanSpeedup(pyth_ideal, nopf))});
    a.print("Fig. 4a: Ideal Hermes potential (single-core)");
    std::printf("Pythia+IdealHermes over Pythia: %+.1f%% (paper: +8.3%%)\n",
                100.0 * (geomeanSpeedup(pyth_ideal, nopf) /
                             geomeanSpeedup(pyth, nopf) -
                         1.0));

    Table t({"prefetcher", "pf-only", "pf + Ideal Hermes", "gain"});
    for (auto pf : {PrefetcherKind::Pythia, PrefetcherKind::Bingo,
                    PrefetcherKind::Spp, PrefetcherKind::Mlop,
                    PrefetcherKind::Sms}) {
        const auto base = runSuite(cfgPrefetcher(pf), b);
        const auto with =
            runSuite(withHermes(cfgPrefetcher(pf), PredictorKind::Ideal),
                     b);
        const double sb = geomeanSpeedup(base, nopf);
        const double sw = geomeanSpeedup(with, nopf);
        t.addRow({prefetcherKindName(pf), Table::fmt(sb), Table::fmt(sw),
                  Table::pct(sw / sb - 1.0)});
    }
    t.print("Fig. 4b: Ideal Hermes with different prefetchers");
    return 0;
}
