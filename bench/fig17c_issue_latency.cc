/**
 * @file
 * Fig. 17c: sensitivity to the Hermes request issue latency (0 to 24
 * cycles) on top of the Pythia baseline.
 *
 * Paper shape: the benefit shrinks as issue latency grows but remains
 * positive even at 24 cycles (+5.7% at 0, +3.6% at 24).
 */
// figmap: Fig. 17c | hermes.issue_latency 0-24 cycles

#include <cstdio>

#include "harness/harness.hh"
#include "sim/param_registry.hh"
#include "sweep/axis.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(100'000, 250'000);
    const auto nopf = runSuite(cfgNoPrefetch(), b);
    const auto pyth = runSuite(cfgBaseline(), b);
    const double base = geomeanSpeedup(pyth, nopf);

    // The sweep axis as a registry spec string over Pythia+Hermes.
    const SystemConfig hermes_base = configWith(
        cfgBaseline(), {"predictor=popet", "hermes.enabled=true"});

    Table t({"issue latency (cycles)", "Pythia+Hermes speedup",
             "gain over Pythia"});
    t.addRow({"(Pythia alone)", Table::fmt(base), "-"});
    for (const auto &pt : sweep::expandAxis(
             hermes_base,
             "hermes.issue_latency=0,3,6,9,12,15,18,21,24")) {
        const auto rs = runSuite(pt.config, b);
        const double s = geomeanSpeedup(rs, nopf);
        t.addRow({std::to_string(pt.config.hermesIssueLatency),
                  Table::fmt(s), Table::pct(s / base - 1.0)});
    }
    t.print("Fig. 17c: sensitivity to Hermes request issue latency");
    return 0;
}
