/**
 * @file
 * Fig. 17a: sensitivity to main-memory bandwidth (200 to 12800 MTPS).
 *
 * Paper shape: Hermes+Pythia beats Pythia at every bandwidth point;
 * Hermes *alone* beats Pythia in the bandwidth-starved configurations
 * because its accurate requests waste far less bandwidth than
 * speculative prefetching.
 */
// figmap: Fig. 17a | dram.mtps 200-12800

#include <cstdio>

#include "common/stats.hh"
#include "harness/harness.hh"
#include "sim/stat_registry.hh"

using namespace hermes;
using namespace hermes::bench;

namespace
{

/** Suite-mean of the registry's DRAM bus-utilization metric. */
double
meanBwUtil(const std::vector<TraceResult> &rs)
{
    std::vector<double> xs;
    xs.reserve(rs.size());
    for (const auto &r : rs)
        xs.push_back(statF64(r.stats, "dram.bw_util"));
    return mean(xs);
}

} // namespace

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(80'000, 200'000);

    Table t({"MTPS", "Hermes", "Pythia", "Pythia+Hermes"});
    Table u({"MTPS", "no-pf bw util", "Hermes", "Pythia",
             "Pythia+Hermes"});
    for (unsigned mtps : {200u, 400u, 800u, 1600u, 3200u, 6400u, 12800u}) {
        auto with_bw = [mtps](SystemConfig cfg) {
            cfg.dram.mtps = mtps;
            return cfg;
        };
        const auto nopf = runSuite(with_bw(cfgNoPrefetch()), b);
        const auto herm = runSuite(
            with_bw(withHermes(cfgNoPrefetch(), PredictorKind::Popet, 6)),
            b);
        const auto pyth = runSuite(with_bw(cfgBaseline()), b);
        const auto both = runSuite(
            with_bw(withHermes(cfgBaseline(), PredictorKind::Popet, 6)),
            b);
        t.addRow({std::to_string(mtps),
                  Table::fmt(geomeanSpeedup(herm, nopf)),
                  Table::fmt(geomeanSpeedup(pyth, nopf)),
                  Table::fmt(geomeanSpeedup(both, nopf))});
        u.addRow({std::to_string(mtps), Table::pct(meanBwUtil(nopf)),
                  Table::pct(meanBwUtil(herm)),
                  Table::pct(meanBwUtil(pyth)),
                  Table::pct(meanBwUtil(both))});
    }
    t.print("Fig. 17a: speedup vs no-pf across main-memory bandwidth");
    u.print("Fig. 17a aux: DRAM data-bus utilization (dram.bw_util)");
    std::printf("\npaper: crossover — Hermes alone beats Pythia at "
                "200-400 MTPS (speculative prefetching burns bandwidth "
                "the utilization table makes visible)\n");
    return 0;
}
