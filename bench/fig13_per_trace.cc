/**
 * @file
 * Fig. 13: per-trace speedup line graph of Hermes-O, Pythia, and
 * Pythia + Hermes-O over the no-prefetching system (sorted by the
 * combined configuration's speedup).
 *
 * Paper shape: Hermes alone improves every trace over no-prefetching;
 * Hermes beats Pythia on irregular traces and loses on prefetch-
 * friendly ones; the combination is the best of both nearly everywhere.
 */
// figmap: Fig. 13 | per-trace speedups: Hermes-O, Pythia, Pythia+Hermes-O

#include <algorithm>
#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);
    const auto nopf = runSuite(cfgNoPrefetch(), b);
    const auto herm =
        runSuite(withHermes(cfgNoPrefetch(), PredictorKind::Popet, 6), b);
    const auto pyth = runSuite(cfgBaseline(), b);
    const auto both =
        runSuite(withHermes(cfgBaseline(), PredictorKind::Popet, 6), b);

    struct Row
    {
        std::string trace;
        double hermes, pythia, combo;
    };
    std::vector<Row> rows;
    unsigned hermes_wins = 0;
    for (std::size_t i = 0; i < nopf.size(); ++i) {
        const double base = nopf[i].stats.ipc(0);
        // IPC 0 means "no data" (e.g. a grid point another shard
        // owns): a ratio against it would print inf/nan rows.
        if (base <= 0 || herm[i].stats.ipc(0) <= 0 ||
            pyth[i].stats.ipc(0) <= 0 || both[i].stats.ipc(0) <= 0)
            continue;
        Row r{nopf[i].trace, herm[i].stats.ipc(0) / base,
              pyth[i].stats.ipc(0) / base, both[i].stats.ipc(0) / base};
        hermes_wins += r.hermes > r.pythia;
        rows.push_back(r);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.combo < b.combo; });

    Table t({"trace", "Hermes-O", "Pythia", "Pythia+Hermes-O"});
    for (const auto &r : rows)
        t.addRow({r.trace, Table::fmt(r.hermes), Table::fmt(r.pythia),
                  Table::fmt(r.combo)});
    t.print("Fig. 13: per-trace speedup over the no-prefetching system");
    std::printf("\nHermes alone beats Pythia on %u of %zu traces "
                "(paper: 51 of 110)\n",
                hermes_wins, rows.size());
    return 0;
}
