/**
 * @file
 * Microbenchmarks (google-benchmark) for the hot simulator operations:
 * POPET predict/train, cache lookups, DRAM scheduling and synthetic
 * trace generation. These guard against performance regressions in the
 * structures every experiment exercises millions of times.
 */
// figmap: (perf) | google-benchmark microbenchmarks of hot simulator ops

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/addr_index.hh"
#include "common/ring.hh"
#include "common/rng.hh"
#include "dram/dram.hh"
#include "predictor/hmp.hh"
#include "predictor/popet.hh"
#include "predictor/ttp.hh"
#include "trace/suite.hh"

using namespace hermes;

namespace
{

void
BM_PopetPredict(benchmark::State &state)
{
    Popet popet;
    Rng rng(1);
    PredMeta meta;
    for (auto _ : state) {
        const Addr pc = 0x400000 + (rng.next() & 0xFF) * 4;
        const Addr va = rng.next() & ((1ull << 34) - 1);
        benchmark::DoNotOptimize(popet.predict(pc, va, meta));
        popet.train(pc, va, meta, rng.chance(0.1));
    }
}
BENCHMARK(BM_PopetPredict);

void
BM_HmpPredict(benchmark::State &state)
{
    Hmp hmp;
    Rng rng(2);
    PredMeta meta;
    for (auto _ : state) {
        const Addr pc = 0x400000 + (rng.next() & 0xFF) * 4;
        const Addr va = rng.next() & ((1ull << 34) - 1);
        benchmark::DoNotOptimize(hmp.predict(pc, va, meta));
        hmp.train(pc, va, meta, rng.chance(0.1));
    }
}
BENCHMARK(BM_HmpPredict);

void
BM_TtpPredictAndTrack(benchmark::State &state)
{
    Ttp ttp;
    Rng rng(3);
    PredMeta meta;
    for (auto _ : state) {
        const Addr va = rng.next() & ((1ull << 34) - 1);
        benchmark::DoNotOptimize(ttp.predict(0x400000, va, meta));
        ttp.onFillFromDram(lineAddr(va));
    }
}
BENCHMARK(BM_TtpPredictAndTrack);

void
BM_CacheLookupHit(benchmark::State &state)
{
    CacheParams p;
    p.sets = 64;
    p.ways = 12;
    p.latency = 1;
    Cache cache(p);
    // Warm one set's worth of lines via the write path.
    Cycle now = 0;
    for (unsigned i = 0; i < 12; ++i) {
        MemRequest wr;
        wr.address = i * 64 * 64;
        wr.type = AccessType::Writeback;
        cache.addWrite(wr);
        for (int t = 0; t < 4; ++t)
            cache.tick(++now);
    }
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.probe((i++ % 12) * 64));
    }
}
BENCHMARK(BM_CacheLookupHit);

void
BM_DramRandomReads(benchmark::State &state)
{
    DramParams p;
    DramController dram(p);
    Rng rng(4);
    Cycle now = 0;
    for (auto _ : state) {
        MemRequest rd;
        rd.address = (rng.next() & 0xFFFFFF) << 6;
        rd.type = AccessType::Load;
        dram.addRead(rd);
        dram.tick(++now);
    }
}
BENCHMARK(BM_DramRandomReads);

void
BM_TraceGeneration(benchmark::State &state)
{
    auto wl = findTrace("ligra.pagerank_like.0").make();
    for (auto _ : state)
        benchmark::DoNotOptimize(wl->next());
}
BENCHMARK(BM_TraceGeneration);

void
BM_AddrIndexChurn(benchmark::State &state)
{
    // The MSHR/page-buffer lookup structure: insert/find/erase cycle
    // at the occupancy a busy LLC MSHR file sees.
    AddrIndex idx(64);
    Rng rng(5);
    std::vector<Addr> live;
    for (unsigned i = 0; i < 48; ++i) {
        const Addr line = rng.next() & 0xFFFFF;
        if (idx.find(line) == AddrIndex::kNotFound) {
            idx.insert(line, i);
            live.push_back(line);
        }
    }
    std::size_t cursor = 0;
    for (auto _ : state) {
        const Addr probe = rng.next() & 0xFFFFF;
        benchmark::DoNotOptimize(idx.find(probe));
        const Addr victim = live[cursor % live.size()];
        idx.erase(victim);
        const Addr fresh = (rng.next() & 0xFFFFF) | 0x100000;
        idx.insert(fresh, static_cast<std::uint32_t>(cursor));
        live[cursor % live.size()] = fresh;
        ++cursor;
    }
}
BENCHMARK(BM_AddrIndexChurn);

void
BM_RingQueue(benchmark::State &state)
{
    // The cache/core queue container: steady-state push/pop.
    Ring<MemRequest> ring(32);
    MemRequest req;
    for (int i = 0; i < 16; ++i)
        ring.push_back(req);
    for (auto _ : state) {
        ring.push_back(req);
        benchmark::DoNotOptimize(ring.front());
        ring.pop_front();
    }
}
BENCHMARK(BM_RingQueue);

} // namespace

BENCHMARK_MAIN();
