#pragma once

/**
 * @file
 * Shared benchmark harness: named system configurations matching the
 * paper's evaluated mechanisms (§7.2), suite runners with per-category
 * aggregation, speedup helpers and table printing. Every figure/table
 * bench binary is a thin driver over these helpers.
 *
 * Environment knobs:
 *  - HERMES_SIM_SCALE: scales instruction budgets (default 1.0);
 *  - HERMES_BENCH_SUITE=quick|full: trace list (default quick, so the
 *    whole bench directory finishes in minutes on a laptop).
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/power.hh"
#include "sim/simulator.hh"
#include "sim/system.hh"
#include "trace/suite.hh"

namespace hermes::bench
{

/** The trace list selected by HERMES_BENCH_SUITE. */
std::vector<TraceSpec> suite();

/** Simulation budget honouring HERMES_SIM_SCALE. */
SimBudget budget(std::uint64_t warmup = 60'000,
                 std::uint64_t sim = 250'000);

/** Named baseline configurations (single core unless stated). */
SystemConfig cfgNoPrefetch();
SystemConfig cfgPrefetcher(PrefetcherKind pf);
/** Pythia baseline (the paper's Table 4 system). */
SystemConfig cfgBaseline();
/** Add Hermes with the given predictor to a config. */
SystemConfig withHermes(SystemConfig cfg, PredictorKind pred,
                        Cycle issue_latency = 6);
/** Predictor observing loads but never issuing requests. */
SystemConfig withPredictorOnly(SystemConfig cfg, PredictorKind pred);

/** A run result labelled by trace. */
struct TraceResult
{
    std::string trace;
    std::string category;
    RunStats stats;
};

/** Run a config over the whole suite (single-core). */
std::vector<TraceResult> runSuite(const SystemConfig &cfg,
                                  const SimBudget &b);

/** Geomean over per-trace ratios vs a baseline run of the same suite. */
double geomeanSpeedup(const std::vector<TraceResult> &test,
                      const std::vector<TraceResult> &base);

/** Per-category geomean speedups (keyed by category, plus "ALL"). */
std::map<std::string, double>
speedupByCategory(const std::vector<TraceResult> &test,
                  const std::vector<TraceResult> &base);

/** Per-category arithmetic mean of a per-trace metric. */
std::map<std::string, double>
meanByCategory(const std::vector<TraceResult> &rs,
               double (*metric)(const TraceResult &));

/** Simple aligned table printer (also emits a CSV block). */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);
    void addRow(std::vector<std::string> cells);
    void print(const std::string &title) const;

    static std::string fmt(double v, int precision = 3);
    static std::string pct(double v, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hermes::bench
