#pragma once

/**
 * @file
 * Shared benchmark harness: named system configurations matching the
 * paper's evaluated mechanisms (§7.2), suite runners with per-category
 * aggregation, speedup helpers and table printing. Every figure/table
 * bench binary is a thin driver over these helpers.
 *
 * Suite runners fan their (config x trace) grids over all cores with
 * sweep::SweepEngine; results are deterministic at any thread count.
 *
 * Environment knobs:
 *  - HERMES_SIM_SCALE: scales instruction budgets (default 1.0);
 *  - HERMES_BENCH_SUITE=quick|full: trace list (default quick, so the
 *    whole bench directory finishes in minutes on a laptop);
 *  - HERMES_THREADS: worker threads (default: all hardware threads).
 *
 * CLI flags (initCli; they win over the environment):
 *  --threads N (0 = all hardware threads), --suite quick|full,
 *  --scale F, --csv FILE, --json FILE, --stats LIST (registry column
 *  selection for the dumps, e.g. "core.ipc,llc.mpki,dram.*"),
 *  --progress, --no-progress, --mips, --profile (per-component
 *  host-time breakdown per grid; exports HERMES_PROFILE), --list
 *  (print available predictors, prefetchers, suites and registry
 *  parameters, then exit).
 *
 * Fleet orchestration (see src/sweep/journal.hh): every grid a driver
 * fans out is journaled, shardable and resumable with the same flags
 * hermes_sweep uses —
 *  --journal FILE  append each completed point as crash-safe JSONL
 *                  (one journal segment per runGrid/runSuite call);
 *  --shard i/N     simulate only slice i of each grid's deterministic
 *                  N-way partition (figure tables are then partial);
 *  --resume FILE   skip points FILE already records (repeatable;
 *                  shard journals of the same driver union together,
 *                  so a complete union reprints full figures without
 *                  re-simulating anything);
 *  --cache SPEC    shared content-addressed result store
 *                  "DIR[,max_bytes=SIZE][,max_entries=N]" (env
 *                  HERMES_RESULT_CACHE; --no-cache ignores the env):
 *                  points the store already holds load instead of
 *                  simulating, and every completion is stored back, so
 *                  overlapping figure grids and re-runs share work;
 *  --warmup-cache SPEC
 *                  shared warmup checkpoint store (same SPEC syntax;
 *                  env HERMES_WARMUP_CACHE, --no-warmup-cache ignores
 *                  it): grid points with the same warmup identity
 *                  restore the warmed state instead of re-warming
 *                  (sim/warmup_cache.hh).
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/power.hh"
#include "sim/simulator.hh"
#include "sim/system.hh"
#include "sweep/sweep.hh"
#include "trace/suite.hh"

namespace hermes::bench
{

/** Options shared by every figure/table driver, set by initCli(). */
struct CliOptions
{
    /** Sweep worker threads; 0 = all hardware threads. */
    int threads = 0;
    /** "quick" or "full"; empty defers to HERMES_BENCH_SUITE. */
    std::string suiteName;
    /** Progress meter on stderr (default: only when a terminal). */
    bool progress = false;
    /**
     * Report simulator throughput: prints a simulated-MIPS summary per
     * grid after each fan-out and appends sim_mips/host_seconds
     * columns to the --csv/--json dumps.
     */
    bool mips = false;
    /**
     * Per-component host-time attribution: exports HERMES_PROFILE so
     * every simulated System accumulates per-stage seconds (see
     * src/sim/perf.hh and docs/performance.md) and prints an aggregate
     * breakdown after each grid. Host-side only — never affects
     * simulated results or fingerprints.
     */
    bool profile = false;
    /** Write every simulated grid point as CSV/JSON on exit. */
    std::string csvPath;
    std::string jsonPath;
    /**
     * Registry column selection for the dumps ("" = the default
     * aggregate columns, plus host-perf columns under --mips). See
     * sim/stat_registry.hh for the key syntax.
     */
    std::string statsSpec;
    /** This process's slice of every grid (default: all of it). */
    sweep::ShardSpec shard;
    /** Journal completed points here ("" = no journaling). */
    std::string journalPath;
    /** Journals whose recorded points are skipped, not re-simulated. */
    std::vector<std::string> resumePaths;
    /**
     * Result store spec "DIR[,max_bytes=SIZE][,max_entries=N]"; ""
     * means no store (unless HERMES_RESULT_CACHE names one and
     * --no-cache was not given). See sweep/result_cache.hh.
     */
    std::string cacheSpec;
    /**
     * Warmup checkpoint store spec (same syntax); "" means none
     * (unless HERMES_WARMUP_CACHE names one and --no-warmup-cache was
     * not given). See sim/warmup_cache.hh.
     */
    std::string warmupCacheSpec;
};

/**
 * Parse the shared bench flags (call first in every driver's main).
 * Unknown flags abort with a usage message; --scale re-exports
 * HERMES_SIM_SCALE so budget() picks it up.
 */
void initCli(int argc, char **argv);

/** The options parsed by initCli() (defaults if never called). */
const CliOptions &cli();

/** The trace list selected by --suite / HERMES_BENCH_SUITE. */
std::vector<TraceSpec> suite();

/** Engine honouring --threads and --progress; used by runSuite(). */
sweep::SweepEngine engine();

/**
 * Run a labelled grid through engine() and record every point for the
 * --csv/--json exit dump. Building block for custom fan-outs.
 *
 * Under --journal/--shard/--resume this is the orchestrated path: each
 * call opens the next journal segment, resumed points are reused, and
 * only this shard's missing points simulate. Slots not owned by this
 * process come back with empty stats — gridComplete() says whether the
 * last grid was fully covered (drivers' derived tables are only
 * meaningful when it was, and the harness prints a note when not).
 */
std::vector<sweep::PointResult>
runGrid(const std::vector<sweep::GridPoint> &grid);

/** True when every point of the last runGrid() call holds real stats. */
bool gridComplete();

/** Simulation budget honouring HERMES_SIM_SCALE; the defaults are the
 * shared per-point sweep windows (SimBudget::sweepDefaults). */
SimBudget budget(std::uint64_t warmup = SimBudget::sweepDefaults().warmupInstrs,
                 std::uint64_t sim = SimBudget::sweepDefaults().simInstrs);

/** Named baseline configurations (single core unless stated). */
SystemConfig cfgNoPrefetch();
SystemConfig cfgPrefetcher(PrefetcherKind pf);
/**
 * Prefetcher by registered model name (see hermes_run --list-models);
 * reaches registry-only prefetchers the enum overload cannot.
 */
SystemConfig cfgPrefetcher(const std::string &pf);
/** Pythia baseline (the paper's Table 4 system). */
SystemConfig cfgBaseline();
/** Add Hermes with the given predictor to a config. */
SystemConfig withHermes(SystemConfig cfg, PredictorKind pred,
                        Cycle issue_latency = 6);
/**
 * Hermes with a predictor by registered model name — the registry
 * route, so drivers can sweep every contender including ones that have
 * no PredictorKind enumerator.
 */
SystemConfig withHermes(SystemConfig cfg, const std::string &pred,
                        Cycle issue_latency = 6);
/** Predictor observing loads but never issuing requests. */
SystemConfig withPredictorOnly(SystemConfig cfg, PredictorKind pred);

/** A run result labelled by trace. */
struct TraceResult
{
    std::string trace;
    std::string category;
    RunStats stats;
};

/** Run a config over the whole suite (single-core, parallel). */
std::vector<TraceResult> runSuite(const SystemConfig &cfg,
                                  const SimBudget &b);

/**
 * Run a multi-core config over a list of workload mixes (one trace per
 * core each), fanned over the engine; results in mix order.
 */
std::vector<RunStats> runMixes(const SystemConfig &cfg,
                               const std::vector<std::vector<TraceSpec>> &mixes,
                               const SimBudget &b,
                               const std::string &label_prefix);

/** Geomean over per-trace ratios vs a baseline run of the same suite. */
double geomeanSpeedup(const std::vector<TraceResult> &test,
                      const std::vector<TraceResult> &base);

/** Per-category geomean speedups (keyed by category, plus "ALL"). */
std::map<std::string, double>
speedupByCategory(const std::vector<TraceResult> &test,
                  const std::vector<TraceResult> &base);

/** Per-category arithmetic mean of a per-trace metric. */
std::map<std::string, double>
meanByCategory(const std::vector<TraceResult> &rs,
               double (*metric)(const TraceResult &));

/** Simple aligned table printer (also emits a CSV block). */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);
    void addRow(std::vector<std::string> cells);
    void print(const std::string &title) const;

    static std::string fmt(double v, int precision = 3);
    static std::string pct(double v, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hermes::bench
