#include "harness/harness.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/stats.hh"

namespace hermes::bench
{

std::vector<TraceSpec>
suite()
{
    const char *env = std::getenv("HERMES_BENCH_SUITE");
    if (env != nullptr && std::strcmp(env, "full") == 0)
        return fullSuite();
    return quickSuite();
}

SimBudget
budget(std::uint64_t warmup, std::uint64_t sim)
{
    return SimBudget::fromEnv(warmup, sim);
}

SystemConfig
cfgNoPrefetch()
{
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = PrefetcherKind::None;
    return cfg;
}

SystemConfig
cfgPrefetcher(PrefetcherKind pf)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = pf;
    return cfg;
}

SystemConfig
cfgBaseline()
{
    return cfgPrefetcher(PrefetcherKind::Pythia);
}

SystemConfig
withHermes(SystemConfig cfg, PredictorKind pred, Cycle issue_latency)
{
    cfg.predictor = pred;
    cfg.hermesIssueEnabled = true;
    cfg.hermesIssueLatency = issue_latency;
    return cfg;
}

SystemConfig
withPredictorOnly(SystemConfig cfg, PredictorKind pred)
{
    cfg.predictor = pred;
    cfg.hermesIssueEnabled = false;
    return cfg;
}

std::vector<TraceResult>
runSuite(const SystemConfig &cfg, const SimBudget &b)
{
    std::vector<TraceResult> out;
    for (const auto &spec : suite()) {
        TraceResult r;
        r.trace = spec.name();
        r.category = spec.category();
        r.stats = simulateOne(cfg, spec, b);
        out.push_back(std::move(r));
    }
    return out;
}

double
geomeanSpeedup(const std::vector<TraceResult> &test,
               const std::vector<TraceResult> &base)
{
    std::vector<double> ratios;
    for (std::size_t i = 0; i < test.size() && i < base.size(); ++i) {
        const double t = test[i].stats.ipc(0);
        const double b = base[i].stats.ipc(0);
        if (t > 0 && b > 0)
            ratios.push_back(t / b);
    }
    return geomean(ratios);
}

std::map<std::string, double>
speedupByCategory(const std::vector<TraceResult> &test,
                  const std::vector<TraceResult> &base)
{
    std::map<std::string, std::vector<double>> per_cat;
    std::vector<double> all;
    for (std::size_t i = 0; i < test.size() && i < base.size(); ++i) {
        const double t = test[i].stats.ipc(0);
        const double b = base[i].stats.ipc(0);
        if (t > 0 && b > 0) {
            per_cat[test[i].category].push_back(t / b);
            all.push_back(t / b);
        }
    }
    std::map<std::string, double> out;
    for (auto &[cat, v] : per_cat)
        out[cat] = geomean(v);
    out["ALL"] = geomean(all);
    return out;
}

std::map<std::string, double>
meanByCategory(const std::vector<TraceResult> &rs,
               double (*metric)(const TraceResult &))
{
    std::map<std::string, std::vector<double>> per_cat;
    std::vector<double> all;
    for (const auto &r : rs) {
        const double v = metric(r);
        per_cat[r.category].push_back(v);
        all.push_back(v);
    }
    std::map<std::string, double> out;
    for (auto &[cat, v] : per_cat)
        out[cat] = mean(v);
    out["ALL"] = mean(all);
    return out;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

void
Table::print(const std::string &title) const
{
    std::printf("\n== %s ==\n", title.c_str());
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
            std::printf("%-*s  ", static_cast<int>(width[c]),
                        row[c].c_str());
        std::printf("\n");
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);

    // CSV block for scripted consumption.
    std::printf("csv,");
    for (std::size_t c = 0; c < headers_.size(); ++c)
        std::printf("%s%s", headers_[c].c_str(),
                    c + 1 < headers_.size() ? "," : "\n");
    for (const auto &row : rows_) {
        std::printf("csv,");
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%s%s", row[c].c_str(),
                        c + 1 < row.size() ? "," : "\n");
    }
}

} // namespace hermes::bench
