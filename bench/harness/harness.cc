#include "harness/harness.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unistd.h>

#include "common/stats.hh"
#include "sim/param_registry.hh"
#include "trace/resolve.hh"
#include "sim/report.hh"
#include "sim/stat_registry.hh"
#include "sim/warmup_cache.hh"
#include "sweep/journal.hh"
#include "sweep/result_cache.hh"

namespace hermes::bench
{

namespace
{

CliOptions g_cli;

/** Every grid point simulated by runGrid(), for the exit dump. */
std::vector<sweep::PointResult> g_all_results;
std::mutex g_all_results_mutex;

/** Orchestration state: journal writer, resumed segments, cursor. */
std::unique_ptr<sweep::JournalWriter> g_journal;
std::unique_ptr<sweep::ResultCache> g_cache;
std::unique_ptr<WarmupCache> g_warmup_cache;
std::vector<sweep::JournalSegment> g_resume;
std::size_t g_segment_index = 0;
bool g_last_grid_complete = true;
bool g_any_grid_incomplete = false;

bool
orchestrated()
{
    return !g_cli.journalPath.empty() || !g_resume.empty() ||
           g_cli.shard.count > 1 || g_cache != nullptr;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--threads N] [--suite SPEC] [--scale F]\n"
        "          [--csv FILE] [--json FILE] [--stats LIST]\n"
        "          [--progress|--no-progress]\n"
        "          [--mips] [--profile] [--shard i/N] [--journal FILE]\n"
        "          [--resume FILE]... [--cache SPEC] [--no-cache]\n"
        "          [--warmup-cache SPEC] [--no-warmup-cache]\n"
        "          [--list]\n"
        "  --threads N   sweep worker threads (0 = all hardware\n"
        "                threads, the default; env HERMES_THREADS)\n"
        "  --suite S     trace suite: quick, full, or a comma list\n"
        "                of trace specs (suite names,\n"
        "                corpus.<generator>[:knob=value...],\n"
        "                file:<path>); default quick; env"
        " HERMES_BENCH_SUITE\n"
        "  --scale F     scale instruction budgets (env"
        " HERMES_SIM_SCALE)\n"
        "  --csv FILE    dump every simulated point as CSV on exit\n"
        "  --json FILE   dump every simulated point as JSON on exit\n"
        "  --stats LIST  dump columns: comma-separated stat keys,\n"
        "                per-core forms (core.0.ipc) and globs\n"
        "                (dram.*; see hermes_run --list-stats)\n"
        "  --progress    per-point meter with points/sec and ETA\n"
        "  --mips        report simulated-MIPS per grid and add\n"
        "                sim_mips/host_seconds columns to the dumps\n"
        "  --profile     per-component host-time breakdown per grid\n"
        "                (exports HERMES_PROFILE; host-side only,\n"
        "                simulated results are unaffected)\n"
        "  --shard i/N   simulate only slice i of every grid's\n"
        "                deterministic N-way partition\n"
        "  --journal FILE  record completed points as crash-safe JSONL\n"
        "                (one segment per grid this driver fans out)\n"
        "  --resume FILE   skip points already recorded in FILE\n"
        "                (repeatable; shard journals union together)\n"
        "  --cache SPEC  content-addressed result store\n"
        "                \"DIR[,max_bytes=SIZE][,max_entries=N]\";\n"
        "                cached points load instead of simulating\n"
        "                (env HERMES_RESULT_CACHE)\n"
        "  --no-cache    ignore HERMES_RESULT_CACHE\n"
        "  --warmup-cache SPEC\n"
        "                warmup checkpoint store (same SPEC syntax);\n"
        "                points sharing a warmup identity restore the\n"
        "                warmed state instead of re-warming\n"
        "                (env HERMES_WARMUP_CACHE)\n"
        "  --no-warmup-cache\n"
        "                ignore HERMES_WARMUP_CACHE\n"
        "  --list        print available predictors, prefetchers,\n"
        "                suites and registry parameters, then exit\n",
        argv0);
    std::exit(2);
}

/** Strict integer parse; exits via usage() on any non-numeric input. */
int
parseIntOrUsage(const std::string &s, const char *argv0)
{
    char *end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (s.empty() || end == nullptr || *end != '\0')
        usage(argv0);
    return static_cast<int>(v);
}

void
flushSweepDumps()
{
    std::lock_guard<std::mutex> g(g_all_results_mutex);
    if (g_any_grid_incomplete)
        std::fprintf(stderr,
                     "note: --csv/--json dumps hold only the points "
                     "this shard covered\n");
    std::vector<StatColumn> columns =
        g_cli.statsSpec.empty() ? defaultStatColumns(g_cli.mips)
                                : selectStatColumns(g_cli.statsSpec);
    if (!g_cli.statsSpec.empty() && g_cli.mips)
        appendHostPerfColumns(columns);
    if (!g_cli.csvPath.empty())
        writeTextFile(g_cli.csvPath,
                      sweep::toCsv(g_all_results, columns));
    if (!g_cli.jsonPath.empty())
        writeTextFile(g_cli.jsonPath,
                      sweep::toJson(g_all_results, columns) + "\n");
}

} // namespace

void
initCli(int argc, char **argv)
{
    g_cli = CliOptions{};
    g_cli.progress = isatty(fileno(stderr)) != 0;
    if (const char *env = std::getenv("HERMES_THREADS"))
        g_cli.threads = parseIntOrUsage(env, argv[0]);
    bool no_cache = false;
    bool no_warmup_cache = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--threads") {
            g_cli.threads = parseIntOrUsage(value(), argv[0]);
        } else if (arg == "--suite") {
            g_cli.suiteName = value();
            // Fail fast on typos and bad corpus knobs/file paths:
            // resolution errors surface here, not after setup work.
            try {
                resolveSuite(g_cli.suiteName);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                std::exit(2);
            }
        } else if (arg == "--scale") {
            setenv("HERMES_SIM_SCALE", value().c_str(), 1);
        } else if (arg == "--csv") {
            g_cli.csvPath = value();
        } else if (arg == "--json") {
            g_cli.jsonPath = value();
        } else if (arg == "--stats") {
            g_cli.statsSpec = value();
            // Fail fast on typos: selection errors surface here, not
            // after a whole figure grid has simulated.
            try {
                selectStatColumns(g_cli.statsSpec);
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                std::exit(2);
            }
        } else if (arg == "--progress") {
            g_cli.progress = true;
        } else if (arg == "--no-progress") {
            g_cli.progress = false;
        } else if (arg == "--mips") {
            g_cli.mips = true;
        } else if (arg == "--profile") {
            g_cli.profile = true;
            // Systems read the knob at construction time, so export it
            // before any grid fans out.
            setenv("HERMES_PROFILE", "1", 1);
        } else if (arg == "--shard") {
            try {
                g_cli.shard = sweep::parseShardSpec(value());
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                usage(argv[0]);
            }
        } else if (arg == "--journal") {
            g_cli.journalPath = value();
        } else if (arg == "--resume") {
            g_cli.resumePaths.push_back(value());
        } else if (arg == "--cache") {
            g_cli.cacheSpec = value();
        } else if (arg == "--no-cache") {
            no_cache = true;
        } else if (arg == "--warmup-cache") {
            g_cli.warmupCacheSpec = value();
        } else if (arg == "--no-warmup-cache") {
            no_warmup_cache = true;
        } else if (arg == "--list") {
            std::printf("%s", describeScenarioSpace().c_str());
            std::exit(0);
        } else {
            usage(argv[0]);
        }
    }

    // Read every resume journal up front; the journal *writer* (which
    // truncates its target — the common crash-recovery spelling
    // re-uses one path: --resume fig.jsonl --journal fig.jsonl) is
    // only opened by runGrid() once the first grid has validated
    // against the resumed records, so a mismatched resume cannot
    // destroy the very journal it came from.
    g_resume.clear();
    g_segment_index = 0;
    g_journal.reset();
    try {
        std::vector<std::vector<sweep::JournalSegment>> files;
        for (const std::string &path : g_cli.resumePaths) {
            bool truncated = false;
            files.push_back(sweep::readJournal(path, &truncated));
            if (truncated)
                std::fprintf(stderr,
                             "note: %s has a truncated final record "
                             "(crash mid-append); it will be "
                             "re-simulated\n",
                             path.c_str());
        }
        if (!files.empty())
            g_resume = sweep::mergeSegments(files);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(1);
    }

    if (g_cli.cacheSpec.empty() && !no_cache)
        if (const char *env = std::getenv("HERMES_RESULT_CACHE"))
            g_cli.cacheSpec = env;
    g_cache.reset();
    if (!g_cli.cacheSpec.empty()) {
        try {
            g_cache = std::make_unique<sweep::ResultCache>(
                sweep::parseResultCacheSpec(g_cli.cacheSpec));
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            std::exit(1);
        }
    }

    if (g_cli.warmupCacheSpec.empty() && !no_warmup_cache)
        if (const char *env = std::getenv("HERMES_WARMUP_CACHE"))
            g_cli.warmupCacheSpec = env;
    g_warmup_cache.reset();
    if (!g_cli.warmupCacheSpec.empty()) {
        try {
            g_warmup_cache = std::make_unique<WarmupCache>(
                parseWarmupCacheSpec(g_cli.warmupCacheSpec));
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            std::exit(1);
        }
    }

    if (!g_cli.csvPath.empty() || !g_cli.jsonPath.empty())
        std::atexit(flushSweepDumps);
}

const CliOptions &
cli()
{
    return g_cli;
}

std::vector<TraceSpec>
suite()
{
    std::string name = g_cli.suiteName;
    if (name.empty()) {
        const char *env = std::getenv("HERMES_BENCH_SUITE");
        name = env != nullptr ? env : "quick";
    }
    try {
        return resolveSuite(name);
    } catch (const std::exception &e) {
        // Only reachable via HERMES_BENCH_SUITE; --suite validated in
        // initCli().
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(2);
    }
}

namespace
{

sweep::SweepOptions
engineOptions()
{
    sweep::SweepOptions opts;
    opts.threads = g_cli.threads;
    opts.warmupCache = g_warmup_cache.get();
    if (g_cli.progress) {
        // One meter per fan-out so the rate/ETA restart with each grid.
        auto meter = std::make_shared<sweep::ProgressMeter>();
        opts.onProgress = [meter](std::size_t done, std::size_t total,
                                  const sweep::PointResult &r) {
            std::fprintf(stderr, "\r%s",
                         meter->line(done, total, r.label).c_str());
            if (done == total)
                std::fprintf(stderr, "\n");
        };
    }
    return opts;
}

} // namespace

sweep::SweepEngine
engine()
{
    return sweep::SweepEngine(engineOptions());
}

bool
gridComplete()
{
    return g_last_grid_complete;
}

std::vector<sweep::PointResult>
runGrid(const std::vector<sweep::GridPoint> &grid)
{
    sweep::OrchestratedRun orun;
    if (orchestrated()) {
        sweep::OrchestrateOptions oopts;
        oopts.shard = g_cli.shard;
        // Drivers fan their grids out in a deterministic order, so the
        // k-th grid of this process matches the k-th segment of any
        // journal the same driver wrote.
        if (g_segment_index < g_resume.size()) {
            try {
                sweep::validateSegment(g_resume[g_segment_index], grid);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                // Later segments mismatching (after the writer already
                // rewrote earlier ones) must not cost the only
                // complete copy of the resumed records.
                if (g_journal != nullptr && !g_resume.empty()) {
                    const std::string orig =
                        g_cli.journalPath + ".orig";
                    std::ofstream out(orig, std::ios::binary);
                    out << sweep::journalText(g_resume);
                    if (out)
                        std::fprintf(stderr,
                                     "note: resumed records saved to "
                                     "%s\n",
                                     orig.c_str());
                }
                std::exit(1);
            }
            oopts.resume = &g_resume[g_segment_index];
        }
        ++g_segment_index;
        // Safe to open (and truncate) the journal only now that the
        // resume data has proven to match this process's grids.
        if (g_journal == nullptr && !g_cli.journalPath.empty()) {
            try {
                g_journal = std::make_unique<sweep::JournalWriter>(
                    g_cli.journalPath);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                std::exit(1);
            }
        }
        oopts.journal = g_journal.get();
        oopts.cache = g_cache.get();
        orun = sweep::runJournaled(engineOptions(), grid, oopts);
        g_last_grid_complete = orun.complete();
        if (!g_last_grid_complete) {
            g_any_grid_incomplete = true;
            std::fprintf(
                stderr,
                "note: shard %d/%d owns %zu of this %zu-point grid "
                "(%zu missing); figure output below is partial — "
                "merge the shard journals and re-run with --resume "
                "for full tables\n",
                g_cli.shard.index, g_cli.shard.count,
                orun.simulated + orun.cached + orun.resumed,
                grid.size(), orun.missing());
        }
    } else {
        orun.results = engine().run(grid);
        orun.present.assign(orun.results.size(), true);
        orun.simulated = orun.results.size();
        g_last_grid_complete = true;
    }
    const auto &results = orun.results;

    if (g_cli.mips) {
        std::uint64_t instrs = 0;
        double seconds = 0;
        for (const auto &r : results) {
            if (r.stats.hostPerf.instrs == 0)
                continue; // not simulated here (other shard)
            std::fprintf(stderr, "mips %-48s %8.2f\n", r.label.c_str(),
                         r.stats.hostPerf.mips());
            instrs += r.stats.hostPerf.instrs;
            seconds += r.stats.hostPerf.seconds;
        }
        // Per-run host seconds summed across workers: at --threads 1
        // this is the grid's aggregate simulated-MIPS; at higher
        // thread counts runs overlap and it reads as per-worker
        // throughput.
        if (seconds > 0)
            std::fprintf(stderr,
                         "mips TOTAL %lu instrs / %.3f run-seconds"
                         " = %.2f MIPS\n",
                         static_cast<unsigned long>(instrs), seconds,
                         static_cast<double>(instrs) / seconds / 1e6);
    }
    if (g_cli.profile) {
        HostProfile prof;
        for (const auto &r : results) {
            const HostProfile &p = r.stats.profile;
            prof.enabled = prof.enabled || p.enabled;
            prof.dramSeconds += p.dramSeconds;
            prof.llcSeconds += p.llcSeconds;
            prof.l2Seconds += p.l2Seconds;
            prof.l1Seconds += p.l1Seconds;
            prof.coreSeconds += p.coreSeconds;
            prof.horizonSeconds += p.horizonSeconds;
            prof.tickedCycles += p.tickedCycles;
            prof.skippedCycles += p.skippedCycles;
        }
        const std::uint64_t cycles =
            prof.tickedCycles + prof.skippedCycles;
        std::fprintf(
            stderr,
            "profile: %lu ticked + %lu skipped cycles (%.1f%% "
            "skipped)\n",
            static_cast<unsigned long>(prof.tickedCycles),
            static_cast<unsigned long>(prof.skippedCycles),
            cycles ? 100.0 * static_cast<double>(prof.skippedCycles) /
                         static_cast<double>(cycles)
                   : 0.0);
        if (prof.enabled)
            std::fprintf(stderr,
                         "profile: dram %.3fs llc %.3fs l2 %.3fs "
                         "l1 %.3fs core %.3fs horizon %.3fs\n",
                         prof.dramSeconds, prof.llcSeconds,
                         prof.l2Seconds, prof.l1Seconds,
                         prof.coreSeconds, prof.horizonSeconds);
    }
    {
        std::lock_guard<std::mutex> g(g_all_results_mutex);
        for (std::size_t i = 0; i < results.size(); ++i)
            if (orun.present[i])
                g_all_results.push_back(results[i]);
    }
    return results;
}

SimBudget
budget(std::uint64_t warmup, std::uint64_t sim)
{
    return SimBudget::fromEnv(warmup, sim);
}

SystemConfig
cfgNoPrefetch()
{
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = PrefetcherKind::None;
    return cfg;
}

SystemConfig
cfgPrefetcher(PrefetcherKind pf)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = pf;
    return cfg;
}

SystemConfig
cfgPrefetcher(const std::string &pf)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    // The registry route: resolves registry-only prefetchers too, and
    // rejects typos with a nearest-name suggestion.
    ParamRegistry::instance().apply(cfg, "prefetcher", pf);
    return cfg;
}

SystemConfig
cfgBaseline()
{
    return cfgPrefetcher(PrefetcherKind::Pythia);
}

SystemConfig
withHermes(SystemConfig cfg, PredictorKind pred, Cycle issue_latency)
{
    cfg.predictor = pred;
    cfg.hermesIssueEnabled = true;
    cfg.hermesIssueLatency = issue_latency;
    return cfg;
}

SystemConfig
withHermes(SystemConfig cfg, const std::string &pred,
           Cycle issue_latency)
{
    ParamRegistry::instance().apply(cfg, "predictor", pred);
    cfg.hermesIssueEnabled = true;
    cfg.hermesIssueLatency = issue_latency;
    return cfg;
}

SystemConfig
withPredictorOnly(SystemConfig cfg, PredictorKind pred)
{
    cfg.predictor = pred;
    cfg.hermesIssueEnabled = false;
    return cfg;
}

std::vector<TraceResult>
runSuite(const SystemConfig &cfg, const SimBudget &b)
{
    // Successive runSuite() calls get distinct label prefixes so the
    // --csv/--json exit dump rows stay unique across configs.
    static int run_seq = 0;
    const std::string prefix = "run" + std::to_string(run_seq++) + ".";

    const auto specs = suite();
    std::vector<sweep::GridPoint> grid;
    grid.reserve(specs.size());
    for (const auto &spec : specs)
        grid.push_back({prefix + spec.name(), cfg, {spec}, b});

    const auto results = runGrid(grid);
    std::vector<TraceResult> out;
    out.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        TraceResult r;
        r.trace = specs[i].name();
        r.category = specs[i].category();
        r.stats = results[i].stats;
        out.push_back(std::move(r));
    }
    return out;
}

std::vector<RunStats>
runMixes(const SystemConfig &cfg,
         const std::vector<std::vector<TraceSpec>> &mixes,
         const SimBudget &b, const std::string &label_prefix)
{
    std::vector<sweep::GridPoint> grid;
    grid.reserve(mixes.size());
    for (std::size_t i = 0; i < mixes.size(); ++i)
        grid.push_back(
            {label_prefix + ".mix" + std::to_string(i), cfg, mixes[i], b});

    const auto results = runGrid(grid);
    std::vector<RunStats> out;
    out.reserve(results.size());
    for (const auto &r : results)
        out.push_back(r.stats);
    return out;
}

double
geomeanSpeedup(const std::vector<TraceResult> &test,
               const std::vector<TraceResult> &base)
{
    std::vector<double> ratios;
    for (std::size_t i = 0; i < test.size() && i < base.size(); ++i) {
        const double t = test[i].stats.ipc(0);
        const double b = base[i].stats.ipc(0);
        if (t > 0 && b > 0)
            ratios.push_back(t / b);
    }
    return geomean(ratios);
}

std::map<std::string, double>
speedupByCategory(const std::vector<TraceResult> &test,
                  const std::vector<TraceResult> &base)
{
    std::map<std::string, std::vector<double>> per_cat;
    std::vector<double> all;
    for (std::size_t i = 0; i < test.size() && i < base.size(); ++i) {
        const double t = test[i].stats.ipc(0);
        const double b = base[i].stats.ipc(0);
        if (t > 0 && b > 0) {
            per_cat[test[i].category].push_back(t / b);
            all.push_back(t / b);
        }
    }
    std::map<std::string, double> out;
    for (auto &[cat, v] : per_cat)
        out[cat] = geomean(v);
    out["ALL"] = geomean(all);
    return out;
}

std::map<std::string, double>
meanByCategory(const std::vector<TraceResult> &rs,
               double (*metric)(const TraceResult &))
{
    std::map<std::string, std::vector<double>> per_cat;
    std::vector<double> all;
    for (const auto &r : rs) {
        const double v = metric(r);
        per_cat[r.category].push_back(v);
        all.push_back(v);
    }
    std::map<std::string, double> out;
    for (auto &[cat, v] : per_cat)
        out[cat] = mean(v);
    out["ALL"] = mean(all);
    return out;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

void
Table::print(const std::string &title) const
{
    std::printf("\n== %s ==\n", title.c_str());
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
            std::printf("%-*s  ", static_cast<int>(width[c]),
                        row[c].c_str());
        std::printf("\n");
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);

    // CSV block for scripted consumption.
    std::printf("csv,");
    for (std::size_t c = 0; c < headers_.size(); ++c)
        std::printf("%s%s", headers_[c].c_str(),
                    c + 1 < headers_.size() ? "," : "\n");
    for (const auto &row : rows_) {
        std::printf("csv,");
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%s%s", row[c].c_str(),
                        c + 1 < row.size() ? "," : "\n");
    }
}

} // namespace hermes::bench
