#include "harness/harness.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <unistd.h>

#include "common/stats.hh"
#include "sim/param_registry.hh"

namespace hermes::bench
{

namespace
{

CliOptions g_cli;

/** Every grid point simulated by runGrid(), for the exit dump. */
std::vector<sweep::PointResult> g_all_results;
std::mutex g_all_results_mutex;

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--threads N] [--suite quick|full] [--scale F]\n"
        "          [--csv FILE] [--json FILE] [--progress|--no-progress]\n"
        "          [--mips] [--list]\n"
        "  --threads N   sweep worker threads (default: all cores;\n"
        "                env HERMES_THREADS)\n"
        "  --suite S     trace suite (default quick; env"
        " HERMES_BENCH_SUITE)\n"
        "  --scale F     scale instruction budgets (env"
        " HERMES_SIM_SCALE)\n"
        "  --csv FILE    dump every simulated point as CSV on exit\n"
        "  --json FILE   dump every simulated point as JSON on exit\n"
        "  --progress    per-point progress meter on stderr\n"
        "  --mips        report simulated-MIPS per grid and add\n"
        "                sim_mips/host_seconds columns to the dumps\n"
        "  --list        print available predictors, prefetchers,\n"
        "                suites and registry parameters, then exit\n",
        argv0);
    std::exit(2);
}

/** Strict integer parse; exits via usage() on any non-numeric input. */
int
parseIntOrUsage(const std::string &s, const char *argv0)
{
    char *end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (s.empty() || end == nullptr || *end != '\0')
        usage(argv0);
    return static_cast<int>(v);
}

void
flushSweepDumps()
{
    std::lock_guard<std::mutex> g(g_all_results_mutex);
    if (!g_cli.csvPath.empty()) {
        std::ofstream out(g_cli.csvPath);
        out << sweep::toCsv(g_all_results, g_cli.mips);
        if (!out)
            std::fprintf(stderr, "warning: could not write %s\n",
                         g_cli.csvPath.c_str());
    }
    if (!g_cli.jsonPath.empty()) {
        std::ofstream out(g_cli.jsonPath);
        out << sweep::toJson(g_all_results, g_cli.mips) << "\n";
        if (!out)
            std::fprintf(stderr, "warning: could not write %s\n",
                         g_cli.jsonPath.c_str());
    }
}

} // namespace

void
initCli(int argc, char **argv)
{
    g_cli = CliOptions{};
    g_cli.progress = isatty(fileno(stderr)) != 0;
    if (const char *env = std::getenv("HERMES_THREADS"))
        g_cli.threads = parseIntOrUsage(env, argv[0]);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--threads") {
            g_cli.threads = parseIntOrUsage(value(), argv[0]);
        } else if (arg == "--suite") {
            g_cli.suiteName = value();
            if (g_cli.suiteName != "quick" && g_cli.suiteName != "full")
                usage(argv[0]);
        } else if (arg == "--scale") {
            setenv("HERMES_SIM_SCALE", value().c_str(), 1);
        } else if (arg == "--csv") {
            g_cli.csvPath = value();
        } else if (arg == "--json") {
            g_cli.jsonPath = value();
        } else if (arg == "--progress") {
            g_cli.progress = true;
        } else if (arg == "--no-progress") {
            g_cli.progress = false;
        } else if (arg == "--mips") {
            g_cli.mips = true;
        } else if (arg == "--list") {
            std::printf("%s", describeScenarioSpace().c_str());
            std::exit(0);
        } else {
            usage(argv[0]);
        }
    }
    if (!g_cli.csvPath.empty() || !g_cli.jsonPath.empty())
        std::atexit(flushSweepDumps);
}

const CliOptions &
cli()
{
    return g_cli;
}

std::vector<TraceSpec>
suite()
{
    std::string name = g_cli.suiteName;
    if (name.empty()) {
        const char *env = std::getenv("HERMES_BENCH_SUITE");
        name = env != nullptr ? env : "quick";
    }
    return name == "full" ? fullSuite() : quickSuite();
}

sweep::SweepEngine
engine()
{
    sweep::SweepOptions opts;
    opts.threads = g_cli.threads;
    if (g_cli.progress) {
        opts.onProgress = [](std::size_t done, std::size_t total,
                             const sweep::PointResult &r) {
            std::fprintf(stderr, "\r[%zu/%zu] %-48.48s", done, total,
                         r.label.c_str());
            if (done == total)
                std::fprintf(stderr, "\n");
        };
    }
    return sweep::SweepEngine(opts);
}

std::vector<sweep::PointResult>
runGrid(const std::vector<sweep::GridPoint> &grid)
{
    auto results = engine().run(grid);
    if (g_cli.mips) {
        std::uint64_t instrs = 0;
        double seconds = 0;
        for (const auto &r : results) {
            std::fprintf(stderr, "mips %-48s %8.2f\n", r.label.c_str(),
                         r.stats.hostPerf.mips());
            instrs += r.stats.hostPerf.instrs;
            seconds += r.stats.hostPerf.seconds;
        }
        // Per-run host seconds summed across workers: at --threads 1
        // this is the grid's aggregate simulated-MIPS; at higher
        // thread counts runs overlap and it reads as per-worker
        // throughput.
        if (seconds > 0)
            std::fprintf(stderr,
                         "mips TOTAL %lu instrs / %.3f run-seconds"
                         " = %.2f MIPS\n",
                         static_cast<unsigned long>(instrs), seconds,
                         static_cast<double>(instrs) / seconds / 1e6);
    }
    std::lock_guard<std::mutex> g(g_all_results_mutex);
    g_all_results.insert(g_all_results.end(), results.begin(),
                         results.end());
    return results;
}

SimBudget
budget(std::uint64_t warmup, std::uint64_t sim)
{
    return SimBudget::fromEnv(warmup, sim);
}

SystemConfig
cfgNoPrefetch()
{
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = PrefetcherKind::None;
    return cfg;
}

SystemConfig
cfgPrefetcher(PrefetcherKind pf)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = pf;
    return cfg;
}

SystemConfig
cfgBaseline()
{
    return cfgPrefetcher(PrefetcherKind::Pythia);
}

SystemConfig
withHermes(SystemConfig cfg, PredictorKind pred, Cycle issue_latency)
{
    cfg.predictor = pred;
    cfg.hermesIssueEnabled = true;
    cfg.hermesIssueLatency = issue_latency;
    return cfg;
}

SystemConfig
withPredictorOnly(SystemConfig cfg, PredictorKind pred)
{
    cfg.predictor = pred;
    cfg.hermesIssueEnabled = false;
    return cfg;
}

std::vector<TraceResult>
runSuite(const SystemConfig &cfg, const SimBudget &b)
{
    // Successive runSuite() calls get distinct label prefixes so the
    // --csv/--json exit dump rows stay unique across configs.
    static int run_seq = 0;
    const std::string prefix = "run" + std::to_string(run_seq++) + ".";

    const auto specs = suite();
    std::vector<sweep::GridPoint> grid;
    grid.reserve(specs.size());
    for (const auto &spec : specs)
        grid.push_back({prefix + spec.name(), cfg, {spec}, b});

    const auto results = runGrid(grid);
    std::vector<TraceResult> out;
    out.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        TraceResult r;
        r.trace = specs[i].name();
        r.category = specs[i].category();
        r.stats = results[i].stats;
        out.push_back(std::move(r));
    }
    return out;
}

std::vector<RunStats>
runMixes(const SystemConfig &cfg,
         const std::vector<std::vector<TraceSpec>> &mixes,
         const SimBudget &b, const std::string &label_prefix)
{
    std::vector<sweep::GridPoint> grid;
    grid.reserve(mixes.size());
    for (std::size_t i = 0; i < mixes.size(); ++i)
        grid.push_back(
            {label_prefix + ".mix" + std::to_string(i), cfg, mixes[i], b});

    const auto results = runGrid(grid);
    std::vector<RunStats> out;
    out.reserve(results.size());
    for (const auto &r : results)
        out.push_back(r.stats);
    return out;
}

double
geomeanSpeedup(const std::vector<TraceResult> &test,
               const std::vector<TraceResult> &base)
{
    std::vector<double> ratios;
    for (std::size_t i = 0; i < test.size() && i < base.size(); ++i) {
        const double t = test[i].stats.ipc(0);
        const double b = base[i].stats.ipc(0);
        if (t > 0 && b > 0)
            ratios.push_back(t / b);
    }
    return geomean(ratios);
}

std::map<std::string, double>
speedupByCategory(const std::vector<TraceResult> &test,
                  const std::vector<TraceResult> &base)
{
    std::map<std::string, std::vector<double>> per_cat;
    std::vector<double> all;
    for (std::size_t i = 0; i < test.size() && i < base.size(); ++i) {
        const double t = test[i].stats.ipc(0);
        const double b = base[i].stats.ipc(0);
        if (t > 0 && b > 0) {
            per_cat[test[i].category].push_back(t / b);
            all.push_back(t / b);
        }
    }
    std::map<std::string, double> out;
    for (auto &[cat, v] : per_cat)
        out[cat] = geomean(v);
    out["ALL"] = geomean(all);
    return out;
}

std::map<std::string, double>
meanByCategory(const std::vector<TraceResult> &rs,
               double (*metric)(const TraceResult &))
{
    std::map<std::string, std::vector<double>> per_cat;
    std::vector<double> all;
    for (const auto &r : rs) {
        const double v = metric(r);
        per_cat[r.category].push_back(v);
        all.push_back(v);
    }
    std::map<std::string, double> out;
    for (auto &[cat, v] : per_cat)
        out[cat] = mean(v);
    out["ALL"] = mean(all);
    return out;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

void
Table::print(const std::string &title) const
{
    std::printf("\n== %s ==\n", title.c_str());
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
            std::printf("%-*s  ", static_cast<int>(width[c]),
                        row[c].c_str());
        std::printf("\n");
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);

    // CSV block for scripted consumption.
    std::printf("csv,");
    for (std::size_t c = 0; c < headers_.size(); ++c)
        std::printf("%s%s", headers_[c].c_str(),
                    c + 1 < headers_.size() ? "," : "\n");
    for (const auto &row : rows_) {
        std::printf("csv,");
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%s%s", row[c].c_str(),
                        c + 1 < row.size() ? "," : "\n");
    }
}

} // namespace hermes::bench
