/**
 * @file
 * Table 6: storage overhead of every evaluated mechanism.
 * Paper: HMP 11KB, TTP 1536KB, Pythia 25.5KB, Bingo 46KB, SPP+PPF
 * 39.3KB, MLOP 8KB, SMS 20KB, Hermes+POPET 4KB.
 */
// figmap: Table 6 | storage overhead of every evaluated mechanism

#include <cstdio>

#include "harness/harness.hh"
#include "predictor/hmp.hh"
#include "predictor/popet.hh"
#include "predictor/ttp.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    Table t({"mechanism", "modelled (KB)", "paper (KB)"});

    Hmp hmp;
    t.addRow({"HMP (local+gshare+gskew)",
              Table::fmt(hmp.storageBits() / 8192.0, 1), "11"});
    Ttp ttp;
    t.addRow({"TTP (metadata ~ L2 budget)",
              Table::fmt(ttp.storageBits() / 8192.0, 1), "1536"});

    const struct
    {
        PrefetcherKind kind;
        const char *paper;
    } pf[] = {
        {PrefetcherKind::Pythia, "25.5"}, {PrefetcherKind::Bingo, "46"},
        {PrefetcherKind::Spp, "39.3"},    {PrefetcherKind::Mlop, "8"},
        {PrefetcherKind::Sms, "20"},
    };
    for (const auto &p : pf) {
        const auto pref = makePrefetcher(p.kind);
        t.addRow({prefetcherKindName(p.kind),
                  Table::fmt(pref->storageBits() / 8192.0, 1), p.paper});
    }

    Popet popet;
    const double lq_kb = 128.0 * 49 / 8192.0;
    t.addRow({"Hermes with POPET",
              Table::fmt(popet.storageBits() / 8192.0 + lq_kb, 1), "4"});
    t.print("Table 6: storage overhead of all evaluated mechanisms");
    return 0;
}
