/**
 * @file
 * Fig. 17d: sensitivity to the on-chip cache hierarchy access latency.
 * The LLC incremental latency sweeps 25-50 cycles (total hierarchy
 * 40-65 cycles) with L1/L2 fixed, mimicking various sliced-LLC designs.
 *
 * Paper shape: Hermes's gain *grows* with hierarchy latency (+3.6% at
 * 40 cycles to +6.2% at 65) — the more on-chip latency there is to
 * hide, the more Hermes helps.
 */
// figmap: Fig. 17d | llc.latency 25-50 cycles

#include <cstdio>

#include "harness/harness.hh"
#include "sim/param_registry.hh"
#include "sweep/axis.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(100'000, 250'000);

    // One string axis, expanded over each evaluated mechanism; the
    // expansions line up index-by-index because they share the spec.
    const std::string axis = "llc.latency=25,30,35,40,45,50";
    const auto nopf_pts = sweep::expandAxis(cfgNoPrefetch(), axis);
    const auto pyth_pts = sweep::expandAxis(cfgBaseline(), axis);
    const auto hp_pts = sweep::expandAxis(
        configWith(cfgBaseline(), {"predictor=popet",
                                   "hermes.enabled=true",
                                   "hermes.issue_latency=18"}),
        axis);
    const auto ho_pts = sweep::expandAxis(
        configWith(cfgBaseline(), {"predictor=popet",
                                   "hermes.enabled=true",
                                   "hermes.issue_latency=6"}),
        axis);

    Table t({"hierarchy latency", "Pythia", "Pythia+Hermes-P",
             "Pythia+Hermes-O", "Hermes-O gain"});
    for (std::size_t i = 0; i < nopf_pts.size(); ++i) {
        const auto nopf = runSuite(nopf_pts[i].config, b);
        const auto pyth = runSuite(pyth_pts[i].config, b);
        const auto hp = runSuite(hp_pts[i].config, b);
        const auto ho = runSuite(ho_pts[i].config, b);
        const double sp = geomeanSpeedup(pyth, nopf);
        const double so = geomeanSpeedup(ho, nopf);
        const Cycle llc_lat = nopf_pts[i].config.llcLatency;
        t.addRow({std::to_string(15 + llc_lat) + " cyc", Table::fmt(sp),
                  Table::fmt(geomeanSpeedup(hp, nopf)), Table::fmt(so),
                  Table::pct(so / sp - 1.0)});
    }
    t.print("Fig. 17d: sensitivity to on-chip cache hierarchy latency");
    return 0;
}
