/**
 * @file
 * Fig. 17d: sensitivity to the on-chip cache hierarchy access latency.
 * The LLC incremental latency sweeps 25-50 cycles (total hierarchy
 * 40-65 cycles) with L1/L2 fixed, mimicking various sliced-LLC designs.
 *
 * Paper shape: Hermes's gain *grows* with hierarchy latency (+3.6% at
 * 40 cycles to +6.2% at 65) — the more on-chip latency there is to
 * hide, the more Hermes helps.
 */

#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(100'000, 250'000);

    Table t({"hierarchy latency", "Pythia", "Pythia+Hermes-P",
             "Pythia+Hermes-O", "Hermes-O gain"});
    for (Cycle llc_lat : {25, 30, 35, 40, 45, 50}) {
        auto with_lat = [llc_lat](SystemConfig cfg) {
            cfg.llcLatency = llc_lat;
            return cfg;
        };
        const auto nopf = runSuite(with_lat(cfgNoPrefetch()), b);
        const auto pyth = runSuite(with_lat(cfgBaseline()), b);
        const auto hp = runSuite(
            with_lat(withHermes(cfgBaseline(), PredictorKind::Popet, 18)),
            b);
        const auto ho = runSuite(
            with_lat(withHermes(cfgBaseline(), PredictorKind::Popet, 6)),
            b);
        const double sp = geomeanSpeedup(pyth, nopf);
        const double so = geomeanSpeedup(ho, nopf);
        t.addRow({std::to_string(15 + llc_lat) + " cyc", Table::fmt(sp),
                  Table::fmt(geomeanSpeedup(hp, nopf)), Table::fmt(so),
                  Table::pct(so / sp - 1.0)});
    }
    t.print("Fig. 17d: sensitivity to on-chip cache hierarchy latency");
    return 0;
}
