/**
 * @file
 * Fig. 11: per-trace accuracy and coverage of POPET using each program
 * feature individually.
 *
 * Paper shape: no single feature wins everywhere — the best feature
 * changes from trace to trace, which is the argument for multi-feature
 * learning.
 */
// figmap: Fig. 11 | popet.feature_mask: per-trace single-feature runs

#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(100'000, 250'000);
    static const char *feature_names[] = {
        "PC^cl_off", "PC^byte_off", "PC+fa", "cl_off+fa", "last4PC",
    };

    // results[f][trace] = (accuracy, coverage)
    std::vector<std::vector<std::pair<double, double>>> results(
        kPopetFeatureCount);
    std::vector<std::string> names;
    for (unsigned f = 0; f < kPopetFeatureCount; ++f) {
        SystemConfig cfg = withPredictorOnly(cfgBaseline(),
                                             PredictorKind::Popet);
        cfg.popet.featureMask = 1u << f;
        for (const auto &r : runSuite(cfg, b)) {
            if (f == 0)
                names.push_back(r.trace);
            const PredictorStats p = r.stats.predTotal();
            results[f].push_back({p.accuracy(), p.coverage()});
        }
    }

    Table t({"trace", "best-acc feature", feature_names[0],
             feature_names[1], feature_names[2], feature_names[3],
             feature_names[4]});
    std::vector<unsigned> wins(kPopetFeatureCount, 0);
    for (std::size_t i = 0; i < names.size(); ++i) {
        unsigned best = 0;
        std::vector<std::string> row = {names[i], ""};
        for (unsigned f = 0; f < kPopetFeatureCount; ++f) {
            if (results[f][i].first > results[best][i].first)
                best = f;
            row.push_back(Table::pct(results[f][i].first) + "/" +
                          Table::pct(results[f][i].second));
        }
        row[1] = feature_names[best];
        ++wins[best];
        t.addRow(row);
    }
    t.print("Fig. 11: per-trace accuracy/coverage per individual feature");

    std::printf("\nbest-accuracy wins per feature:");
    for (unsigned f = 0; f < kPopetFeatureCount; ++f)
        std::printf(" %s=%u", feature_names[f], wins[f]);
    std::printf("\n(paper: wins split 9/20/47/29/5 across features — no "
                "single feature dominates)\n");
    return 0;
}
