/**
 * @file
 * Table 3: storage budget of Hermes (POPET weight tables + page buffer
 * + per-LQ-entry metadata). Paper total: 4.0 KB per core.
 */
// figmap: Table 3 | Hermes per-core storage budget (POPET + metadata)

#include <cstdio>

#include "harness/harness.hh"
#include "predictor/popet.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    Popet popet;

    Table t({"structure", "size (KB)"});
    double popet_kb = 0;
    static const char *names[] = {
        "PC^cacheline offset (1024 x 5b)",
        "PC^byte offset (1024 x 5b)",
        "PC+first access (1024 x 5b)",
        "cacheline offset+first access (128 x 5b)",
        "last-4 load PCs (1024 x 5b)",
    };
    for (unsigned f = 0; f < kPopetFeatureCount; ++f) {
        const double kb = Popet::kTableSizes[f] * 5 / 8.0 / 1024.0;
        t.addRow({names[f], Table::fmt(kb, 3)});
        popet_kb += kb;
    }
    const double page_buffer_kb = 64 * 80 / 8.0 / 1024.0;
    t.addRow({"page buffer (64 x 80b)", Table::fmt(page_buffer_kb, 3)});
    popet_kb += page_buffer_kb;
    t.addRow({"POPET total", Table::fmt(popet_kb, 3)});

    // LQ metadata (Table 3): hashed PC 128x32b, last-4 PC 128x10b,
    // first access 128x1b, perceptron weight 128x5b, prediction 128x1b.
    const double lq_kb = 128.0 * (32 + 10 + 1 + 5 + 1) / 8.0 / 1024.0;
    t.addRow({"LQ metadata (128 entries)", Table::fmt(lq_kb, 3)});
    t.addRow({"Hermes total", Table::fmt(popet_kb + lq_kb, 3)});
    t.print("Table 3: Hermes storage overhead (paper: 4.0 KB)");

    std::printf("\nmodelled POPET storageBits() = %.2f KB\n",
                popet.storageBits() / 8.0 / 1024.0);
    return 0;
}
