/**
 * @file
 * Fig. 20 (Appendix B.2): sensitivity to the per-core LLC size
 * (3-24 MB).
 *
 * Paper shape: Hermes keeps winning at every LLC size; the gain shrinks
 * as the LLC grows (fewer off-chip loads remain), from ~5.4% at 3MB to
 * ~1.3% at 24MB.
 */
// figmap: Fig. 20 | per-core LLC size 3-24 MB

#include <cstdio>

#include "harness/harness.hh"
#include "sim/param_registry.hh"
#include "sweep/axis.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(100'000, 250'000);

    const std::vector<std::string> hermes_o = {
        "predictor=popet", "hermes.enabled=true",
        "hermes.issue_latency=6"};
    const std::string axis = "llc.bytes_per_core=3M,6M,12M,24M";
    const auto nopf_pts = sweep::expandAxis(cfgNoPrefetch(), axis);
    const auto herm_pts =
        sweep::expandAxis(configWith(cfgNoPrefetch(), hermes_o), axis);
    const auto pyth_pts = sweep::expandAxis(cfgBaseline(), axis);
    const auto both_pts =
        sweep::expandAxis(configWith(cfgBaseline(), hermes_o), axis);

    Table t({"LLC MB/core", "Hermes", "Pythia", "Pythia+Hermes", "gain"});
    for (std::size_t i = 0; i < nopf_pts.size(); ++i) {
        const auto nopf = runSuite(nopf_pts[i].config, b);
        const auto herm = runSuite(herm_pts[i].config, b);
        const auto pyth = runSuite(pyth_pts[i].config, b);
        const auto both = runSuite(both_pts[i].config, b);
        const double sp = geomeanSpeedup(pyth, nopf);
        const double sb = geomeanSpeedup(both, nopf);
        t.addRow({std::to_string(nopf_pts[i].config.llcBytesPerCore >>
                                 20),
                  Table::fmt(geomeanSpeedup(herm, nopf)), Table::fmt(sp),
                  Table::fmt(sb), Table::pct(sb / sp - 1.0)});
    }
    t.print("Fig. 20: sensitivity to LLC size per core");
    return 0;
}
