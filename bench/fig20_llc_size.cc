/**
 * @file
 * Fig. 20 (Appendix B.2): sensitivity to the per-core LLC size
 * (3-24 MB).
 *
 * Paper shape: Hermes keeps winning at every LLC size; the gain shrinks
 * as the LLC grows (fewer off-chip loads remain), from ~5.4% at 3MB to
 * ~1.3% at 24MB.
 */

#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(100'000, 250'000);

    Table t({"LLC MB/core", "Hermes", "Pythia", "Pythia+Hermes", "gain"});
    for (std::uint64_t mb : {3ull, 6ull, 12ull, 24ull}) {
        auto with_llc = [mb](SystemConfig cfg) {
            cfg.llcBytesPerCore = mb << 20;
            return cfg;
        };
        const auto nopf = runSuite(with_llc(cfgNoPrefetch()), b);
        const auto herm = runSuite(
            with_llc(withHermes(cfgNoPrefetch(), PredictorKind::Popet, 6)),
            b);
        const auto pyth = runSuite(with_llc(cfgBaseline()), b);
        const auto both = runSuite(
            with_llc(withHermes(cfgBaseline(), PredictorKind::Popet, 6)),
            b);
        const double sp = geomeanSpeedup(pyth, nopf);
        const double sb = geomeanSpeedup(both, nopf);
        t.addRow({std::to_string(mb),
                  Table::fmt(geomeanSpeedup(herm, nopf)), Table::fmt(sp),
                  Table::fmt(sb), Table::pct(sb / sp - 1.0)});
    }
    t.print("Fig. 20: sensitivity to LLC size per core");
    return 0;
}
