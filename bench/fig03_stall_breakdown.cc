/**
 * @file
 * Fig. 3: average stall cycles per ROB-blocking off-chip load in the
 * Pythia baseline, with the fraction eliminable by removing the on-chip
 * cache hierarchy traversal from the critical path.
 *
 * Paper shape: ~147 stall cycles per off-chip load on average, ~40% of
 * which the hierarchy traversal is responsible for.
 */
// figmap: Fig. 3 | stall cycles per blocking off-chip load, Pythia baseline

#include <cstdio>

#include "harness/harness.hh"
#include "sim/stat_registry.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);
    const auto rs = runSuite(cfgBaseline(), b);

    Table t({"category", "stall cyc/off-chip load", "eliminable cyc",
             "eliminable %"});
    std::map<std::string, std::array<double, 4>> agg;
    for (const auto &r : rs) {
        // Registry aggregates (summed across cores), so the breakdown
        // stays correct if this driver ever fans out multi-core grids.
        auto &a = agg[r.category];
        a[0] += static_cast<double>(
            statU64(r.stats, "core.stall_offchip"));
        a[1] += static_cast<double>(
            statU64(r.stats, "core.stall_eliminable"));
        a[2] += static_cast<double>(
            statU64(r.stats, "core.offchip_blocking"));
        a[3] += 1;
    }
    double s_all = 0, e_all = 0, n_all = 0;
    for (const auto &[cat, a] : agg) {
        const double per = a[2] > 0 ? a[0] / a[2] : 0;
        const double eli = a[2] > 0 ? a[1] / a[2] : 0;
        t.addRow({cat, Table::fmt(per, 1), Table::fmt(eli, 1),
                  Table::pct(per > 0 ? eli / per : 0)});
        s_all += a[0];
        e_all += a[1];
        n_all += a[2];
    }
    const double avg = n_all > 0 ? s_all / n_all : 0;
    const double avg_e = n_all > 0 ? e_all / n_all : 0;
    t.addRow({"AVG", Table::fmt(avg, 1), Table::fmt(avg_e, 1),
              Table::pct(avg > 0 ? avg_e / avg : 0)});
    t.print("Fig. 3: ROB stall cycles per off-chip load (Pythia baseline)");
    std::printf("\npaper: 147.1 cycles avg, 40.1%% eliminable\n");
    return 0;
}
