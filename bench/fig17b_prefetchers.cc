/**
 * @file
 * Fig. 17b: Hermes-P/O combined with each baseline prefetcher (Pythia,
 * Bingo, SPP, MLOP, SMS).
 *
 * Paper shape: Hermes improves every baseline prefetcher (by 5.1-7.7%
 * for Hermes-O).
 */
// figmap: Fig. 17b | Hermes-P/O on each baseline prefetcher

#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);
    const auto nopf = runSuite(cfgNoPrefetch(), b);

    Table t({"prefetcher", "pf-only", "pf+Hermes-P", "pf+Hermes-O",
             "Hermes-O gain"});
    for (auto pf : {PrefetcherKind::Pythia, PrefetcherKind::Bingo,
                    PrefetcherKind::Spp, PrefetcherKind::Mlop,
                    PrefetcherKind::Sms}) {
        const auto base = runSuite(cfgPrefetcher(pf), b);
        const auto hp = runSuite(
            withHermes(cfgPrefetcher(pf), PredictorKind::Popet, 18), b);
        const auto ho = runSuite(
            withHermes(cfgPrefetcher(pf), PredictorKind::Popet, 6), b);
        const double sb = geomeanSpeedup(base, nopf);
        const double sho = geomeanSpeedup(ho, nopf);
        t.addRow({prefetcherKindName(pf), Table::fmt(sb),
                  Table::fmt(geomeanSpeedup(hp, nopf)), Table::fmt(sho),
                  Table::pct(sho / sb - 1.0)});
    }
    t.print("Fig. 17b: Hermes with different baseline prefetchers");
    return 0;
}
