/**
 * @file
 * Fig. 5: fraction of loads that go off-chip and LLC MPKI in the
 * baseline (Pythia) system, per workload category.
 *
 * Paper shape: a small fraction of loads (~5%) produces all off-chip
 * traffic (~8 MPKI average), which is what makes off-chip prediction a
 * skewed-class learning problem.
 */
// figmap: Fig. 5 | off-chip load fraction and LLC MPKI per category

#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);
    const auto rs = runSuite(cfgBaseline(), b);

    Table t({"category", "off-chip rate %", "LLC MPKI"});
    std::map<std::string, std::array<double, 3>> agg;
    for (const auto &r : rs) {
        auto &a = agg[r.category];
        const auto &c = r.stats.core[0];
        a[0] += c.loadsRetired
                    ? static_cast<double>(c.loadsOffChip) /
                          static_cast<double>(c.loadsRetired)
                    : 0;
        a[1] += r.stats.llcMpki();
        a[2] += 1;
    }
    double r_all = 0, m_all = 0, n = 0;
    for (const auto &[cat, a] : agg) {
        t.addRow({cat, Table::pct(a[0] / a[2]), Table::fmt(a[1] / a[2], 2)});
        r_all += a[0];
        m_all += a[1];
        n += a[2];
    }
    t.addRow({"AVG", Table::pct(r_all / n), Table::fmt(m_all / n, 2)});
    t.print("Fig. 5: off-chip load rate and LLC MPKI (Pythia baseline)");
    std::printf("\npaper: 5.1%% of loads off-chip, 7.9 MPKI average\n");
    return 0;
}
