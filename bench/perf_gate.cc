/**
 * @file
 * Simulator-throughput gate: runs the quick suite single-threaded on
 * the paper's full-featured configuration (Pythia prefetcher + POPET
 * predictor + Hermes issue — the heaviest per-instruction hot path)
 * and reports simulated MIPS per trace plus the aggregate.
 *
 * Usage:
 *   perf_gate [--out FILE] [--min-mips X] [shared harness flags]
 *
 *  --out FILE     write the gate result as JSON (also printed)
 *  --min-mips X   exit non-zero if the aggregate falls below X
 *
 * Shared harness flags (--threads/--suite/--scale/...) are forwarded
 * to initCli; measurement defaults to --threads 1 so the number is a
 * single-thread figure comparable across commits. CI uploads the JSON
 * artifact so the throughput trend is visible per commit.
 */
// figmap: (perf) | single-thread simulated-MIPS throughput gate

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    std::string out_path;
    double min_mips = 0;

    // Strip gate-specific flags; forward the rest to the harness.
    std::vector<char *> fwd;
    fwd.push_back(argv[0]);
    bool threads_given = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--min-mips" && i + 1 < argc) {
            min_mips = std::atof(argv[++i]);
        } else {
            if (arg == "--threads")
                threads_given = true;
            fwd.push_back(argv[i]);
        }
    }
    static char threads_flag[] = "--threads";
    static char threads_one[] = "1";
    if (!threads_given) {
        fwd.push_back(threads_flag);
        fwd.push_back(threads_one);
    }
    initCli(static_cast<int>(fwd.size()), fwd.data());

    const SystemConfig cfg =
        withHermes(cfgBaseline(), PredictorKind::Popet);
    const SimBudget b = budget();
    const auto results = runSuite(cfg, b);

    std::uint64_t instrs = 0;
    double seconds = 0;
    HostProfile prof;
    std::string points_json;
    std::printf("== perf_gate: quickSuite hot-path throughput ==\n");
    for (const auto &r : results) {
        const HostPerf &hp = r.stats.hostPerf;
        std::printf("%-32s %8.2f MIPS (%lu instrs, %.3f s)\n",
                    r.trace.c_str(), hp.mips(),
                    static_cast<unsigned long>(hp.instrs), hp.seconds);
        instrs += hp.instrs;
        seconds += hp.seconds;
        const HostProfile &p = r.stats.profile;
        prof.enabled = prof.enabled || p.enabled;
        prof.dramSeconds += p.dramSeconds;
        prof.llcSeconds += p.llcSeconds;
        prof.l2Seconds += p.l2Seconds;
        prof.l1Seconds += p.l1Seconds;
        prof.coreSeconds += p.coreSeconds;
        prof.horizonSeconds += p.horizonSeconds;
        prof.tickedCycles += p.tickedCycles;
        prof.skippedCycles += p.skippedCycles;
        if (!points_json.empty())
            points_json += ",";
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "\n    {\"trace\":\"%s\",\"mips\":%.3f,"
                      "\"instrs\":%lu,\"seconds\":%.6f}",
                      r.trace.c_str(), hp.mips(),
                      static_cast<unsigned long>(hp.instrs), hp.seconds);
        points_json += buf;
    }
    const double mips =
        seconds > 0 ? static_cast<double>(instrs) / seconds / 1e6 : 0;
    std::printf("aggregate: %lu instrs in %.3f s = %.3f MIPS\n",
                static_cast<unsigned long>(instrs), seconds, mips);
    const std::uint64_t total_cycles =
        prof.tickedCycles + prof.skippedCycles;
    std::printf("event-horizon: %lu ticked + %lu skipped cycles "
                "(%.1f%% skipped)\n",
                static_cast<unsigned long>(prof.tickedCycles),
                static_cast<unsigned long>(prof.skippedCycles),
                total_cycles ? 100.0 *
                                   static_cast<double>(prof.skippedCycles) /
                                   static_cast<double>(total_cycles)
                             : 0.0);
    if (prof.enabled)
        std::printf("profile: dram %.3fs llc %.3fs l2 %.3fs l1 %.3fs "
                    "core %.3fs horizon %.3fs\n",
                    prof.dramSeconds, prof.llcSeconds, prof.l2Seconds,
                    prof.l1Seconds, prof.coreSeconds,
                    prof.horizonSeconds);

    char head[256];
    std::snprintf(head, sizeof(head),
                  "{\n  \"suite\": \"quick\",\n  \"threads\": %d,\n"
                  "  \"total_instrs\": %lu,\n  \"run_seconds\": %.6f,\n"
                  "  \"mips\": %.3f,\n  \"points\": [",
                  cli().threads, static_cast<unsigned long>(instrs),
                  seconds, mips);
    char prof_json[512];
    std::snprintf(
        prof_json, sizeof(prof_json),
        ",\n  \"profile\": {\n"
        "    \"enabled\": %s,\n"
        "    \"ticked_cycles\": %lu,\n"
        "    \"skipped_cycles\": %lu,\n"
        "    \"dram_seconds\": %.6f,\n"
        "    \"llc_seconds\": %.6f,\n"
        "    \"l2_seconds\": %.6f,\n"
        "    \"l1_seconds\": %.6f,\n"
        "    \"core_seconds\": %.6f,\n"
        "    \"horizon_seconds\": %.6f\n  }",
        prof.enabled ? "true" : "false",
        static_cast<unsigned long>(prof.tickedCycles),
        static_cast<unsigned long>(prof.skippedCycles),
        prof.dramSeconds, prof.llcSeconds, prof.l2Seconds,
        prof.l1Seconds, prof.coreSeconds, prof.horizonSeconds);
    const std::string json =
        std::string(head) + points_json + "\n  ]" + prof_json + "\n}\n";
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        out << json;
        if (!out) {
            std::fprintf(stderr, "error: could not write %s\n",
                         out_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", out_path.c_str());
    }

    if (min_mips > 0 && mips < min_mips) {
        std::fprintf(stderr,
                     "perf_gate FAILED: %.3f MIPS < required %.3f\n",
                     mips, min_mips);
        return 1;
    }
    return 0;
}
