/**
 * @file
 * Fig. 18: runtime dynamic power of Hermes, Pythia and Pythia+Hermes
 * normalised to the no-prefetching system, broken down per structure
 * (McPAT substituted by the activity-based model in sim/power.hh).
 *
 * Paper shape: Hermes adds ~3.6% dynamic power vs Pythia's ~8.7%;
 * Hermes on top of Pythia adds only ~1.5% more.
 */
// figmap: Fig. 18 | dynamic power breakdown: Hermes, Pythia, both

#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(120'000, 300'000);

    struct Named
    {
        const char *name;
        SystemConfig cfg;
    };
    const Named cfgs[] = {
        {"no-prefetching", cfgNoPrefetch()},
        {"Hermes", withHermes(cfgNoPrefetch(), PredictorKind::Popet, 6)},
        {"Pythia", cfgBaseline()},
        {"Pythia+Hermes",
         withHermes(cfgBaseline(), PredictorKind::Popet, 6)},
    };

    Table t({"config", "L1", "L2", "LLC", "bus+DRAM", "other", "total",
             "vs no-pf"});
    double base_total = 0;
    for (const auto &c : cfgs) {
        PowerBreakdown sum;
        for (const auto &r : runSuite(c.cfg, b)) {
            const PowerBreakdown p = computePower(r.stats);
            sum.l1 += p.l1;
            sum.l2 += p.l2;
            sum.llc += p.llc;
            sum.bus += p.bus;
            sum.other += p.other;
        }
        if (base_total == 0)
            base_total = sum.total();
        t.addRow({c.name, Table::fmt(sum.l1, 1), Table::fmt(sum.l2, 1),
                  Table::fmt(sum.llc, 1), Table::fmt(sum.bus, 1),
                  Table::fmt(sum.other, 1), Table::fmt(sum.total(), 1),
                  Table::pct(sum.total() / base_total - 1.0)});
    }
    t.print("Fig. 18: runtime dynamic power (mW, summed over suite)");
    std::printf("\npaper: Hermes +3.6%%, Pythia +8.7%%, "
                "Pythia+Hermes +10.2%% over no-pf\n");
    return 0;
}
