/**
 * @file
 * Design-choice ablations for POPET beyond the paper's figures — the
 * knobs DESIGN.md §4 calls out: page-buffer reach, weight width,
 * training thresholds and the mispredict-training rule. Each sweep
 * reports accuracy/coverage (predictor-only) and Hermes speedup on the
 * Pythia baseline, quantifying how much each design decision buys.
 */
// figmap: DESIGN.md ablations | POPET buffer/weights/thresholds knobs

#include <cstdio>

#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

namespace
{

struct Outcome
{
    double accuracy;
    double coverage;
    double speedup;
};

Outcome
evaluate(const PopetParams &params, const SimBudget &b,
         const std::vector<TraceResult> &nopf)
{
    SystemConfig cfg = withHermes(cfgBaseline(), PredictorKind::Popet, 6);
    cfg.popet = params;
    const auto rs = runSuite(cfg, b);
    PredictorStats all;
    for (const auto &r : rs) {
        const PredictorStats p = r.stats.predTotal();
        all.truePositives += p.truePositives;
        all.falsePositives += p.falsePositives;
        all.falseNegatives += p.falseNegatives;
        all.trueNegatives += p.trueNegatives;
    }
    return {all.accuracy(), all.coverage(), geomeanSpeedup(rs, nopf)};
}

} // namespace

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    const SimBudget b = budget(80'000, 200'000);
    const auto nopf = runSuite(cfgNoPrefetch(), b);

    {
        Table t({"page buffer entries", "accuracy", "coverage",
                 "speedup"});
        for (unsigned entries : {16u, 32u, 64u, 128u, 256u}) {
            PopetParams p;
            p.pageBufferEntries = entries;
            const Outcome o = evaluate(p, b, nopf);
            t.addRow({std::to_string(entries), Table::pct(o.accuracy),
                      Table::pct(o.coverage), Table::fmt(o.speedup)});
        }
        t.print("Ablation: page-buffer reach (paper: 64 entries)");
    }

    {
        Table t({"weight bits", "accuracy", "coverage", "speedup"});
        for (unsigned bits : {3u, 4u, 5u, 6u, 8u}) {
            PopetParams p;
            p.weightBits = bits;
            // Keep thresholds proportional to the weight range so the
            // operating point stays comparable.
            const double scale = static_cast<double>((1 << (bits - 1))) /
                                 16.0;
            p.activationThreshold =
                static_cast<int>(-18 * scale);
            p.trainingThresholdNeg = static_cast<int>(-35 * scale);
            p.trainingThresholdPos = static_cast<int>(40 * scale);
            const Outcome o = evaluate(p, b, nopf);
            t.addRow({std::to_string(bits), Table::pct(o.accuracy),
                      Table::pct(o.coverage), Table::fmt(o.speedup)});
        }
        t.print("Ablation: weight width (paper: 5-bit weights)");
    }

    {
        Table t({"T_N/T_P", "accuracy", "coverage", "speedup"});
        const struct
        {
            int tn, tp;
        } pairs[] = {{-80, 75}, {-50, 55}, {-35, 40}, {-20, 25},
                     {-10, 12}};
        for (const auto &pr : pairs) {
            PopetParams p;
            p.trainingThresholdNeg = pr.tn;
            p.trainingThresholdPos = pr.tp;
            const Outcome o = evaluate(p, b, nopf);
            t.addRow({std::to_string(pr.tn) + "/" + std::to_string(pr.tp),
                      Table::pct(o.accuracy), Table::pct(o.coverage),
                      Table::fmt(o.speedup)});
        }
        t.print("Ablation: training thresholds (paper: -35/40)");
    }

    {
        Table t({"train on mispredict", "accuracy", "coverage",
                 "speedup"});
        for (bool train : {false, true}) {
            PopetParams p;
            p.trainOnMispredict = train;
            const Outcome o = evaluate(p, b, nopf);
            t.addRow({train ? "yes" : "no", Table::pct(o.accuracy),
                      Table::pct(o.coverage), Table::fmt(o.speedup)});
        }
        t.print("Ablation: always-train-on-mispredict rule");
    }
    return 0;
}
