/**
 * @file
 * Fig. 16: eight-core speedups of Pythia + Hermes-{HMP, TTP, POPET}
 * over the no-prefetching eight-core system, on homogeneous and
 * heterogeneous workload mixes.
 *
 * Paper shape: Pythia 1.123, +HMP 1.129, +TTP 1.102 (TTP *hurts* in
 * the bandwidth-constrained system), +POPET 1.174.
 */
// figmap: Fig. 16 | 8-core mixes with Hermes-HMP/TTP/POPET

#include <cstdio>

#include "common/stats.hh"
#include "harness/harness.hh"

using namespace hermes;
using namespace hermes::bench;

namespace
{

/** Homogeneous mixes from a subset of the suite + one random mix. */
std::vector<std::vector<TraceSpec>>
mixes()
{
    const auto traces = suite();
    std::vector<std::vector<TraceSpec>> out;
    // Homogeneous mixes: 8 copies of each of 4 representative traces.
    for (std::size_t i = 0; i < traces.size() && out.size() < 4; i += 3)
        out.push_back(std::vector<TraceSpec>(8, traces[i]));
    // One heterogeneous mix cycling through the suite.
    std::vector<TraceSpec> hetero;
    for (int c = 0; c < 8; ++c)
        hetero.push_back(traces[c % traces.size()]);
    out.push_back(hetero);
    return out;
}

double
mixIpcSum(const RunStats &r)
{
    double s = 0;
    for (int c = 0; c < static_cast<int>(r.core.size()); ++c)
        s += r.ipc(c);
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    initCli(argc, argv);
    SimBudget b = budget(40'000, 100'000);

    struct Named
    {
        const char *name;
        SystemConfig cfg;
    };
    SystemConfig base8 = SystemConfig::baseline(8);
    SystemConfig pyth8 = base8;
    pyth8.prefetcher = PrefetcherKind::Pythia;
    std::vector<Named> cfgs = {
        {"Pythia (baseline)", pyth8},
        {"Pythia+Hermes-HMP",
         withHermes(pyth8, PredictorKind::Hmp, 6)},
        {"Pythia+Hermes-TTP",
         withHermes(pyth8, PredictorKind::Ttp, 6)},
        {"Pythia+Hermes-POPET",
         withHermes(pyth8, PredictorKind::Popet, 6)},
    };

    const auto mix_list = mixes();
    std::vector<double> base_ipc;
    for (const RunStats &r : runMixes(base8, mix_list, b, "nopf8"))
        base_ipc.push_back(mixIpcSum(r));

    Table t({"config", "geomean speedup vs 8-core no-pf"});
    for (const auto &c : cfgs) {
        const auto runs = runMixes(c.cfg, mix_list, b, c.name);
        std::vector<double> speedups;
        for (std::size_t i = 0; i < runs.size(); ++i)
            speedups.push_back(mixIpcSum(runs[i]) / base_ipc[i]);
        t.addRow({c.name, Table::fmt(geomean(speedups))});
    }
    t.print("Fig. 16: eight-core speedup (4 homogeneous + 1 hetero mix)");
    std::printf("\npaper: Pythia 1.123, +HMP 1.129, +TTP 1.102, "
                "+POPET 1.174\n");
    return 0;
}
